"""Country-profile (de)serialization: custom worlds from config files.

A study's world is fully described by its country profiles, so profiles
round-trip to JSON: researchers can version their calibrations, share
them alongside results, and run ``repro-tamper simulate --profiles
my-world.json`` without touching Python.  The format is a direct field
mapping of :class:`~repro.workloads.profiles.CountryProfile`; unknown
keys are rejected so typos fail loudly.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, IO, List, Mapping, Sequence, Union

from repro.errors import ConfigError
from repro.workloads.profiles import CountryProfile, DeploymentSpec

__all__ = ["profile_to_dict", "profile_from_dict", "dump_profiles", "load_profiles"]

_PROFILE_FIELDS = {f.name for f in dataclasses.fields(CountryProfile)}
_DEPLOYMENT_FIELDS = {f.name for f in dataclasses.fields(DeploymentSpec)}


def profile_to_dict(profile: CountryProfile) -> Dict[str, Any]:
    """JSON-safe dictionary form of one profile."""
    out = dataclasses.asdict(profile)
    out["deployments"] = [dataclasses.asdict(d) for d in profile.deployments]
    out["blocked_categories"] = [list(pair) for pair in profile.blocked_categories]
    out["substring_fragments"] = list(profile.substring_fragments)
    return out


def profile_from_dict(data: Mapping[str, Any]) -> CountryProfile:
    """Inverse of :func:`profile_to_dict`; validates field names."""
    unknown = set(data) - _PROFILE_FIELDS
    if unknown:
        raise ConfigError(f"unknown profile fields: {sorted(unknown)}")
    kwargs = dict(data)
    deployments = []
    for entry in kwargs.pop("deployments", []):
        bad = set(entry) - _DEPLOYMENT_FIELDS
        if bad:
            raise ConfigError(f"unknown deployment fields: {sorted(bad)}")
        deployments.append(DeploymentSpec(**entry))
    kwargs["deployments"] = tuple(deployments)
    kwargs["blocked_categories"] = tuple(
        (category, float(coverage))
        for category, coverage in kwargs.pop("blocked_categories", [])
    )
    kwargs["substring_fragments"] = tuple(kwargs.pop("substring_fragments", []))
    try:
        return CountryProfile(**kwargs)
    except TypeError as exc:
        raise ConfigError(f"invalid profile: {exc}") from exc


def dump_profiles(
    path_or_file: Union[str, IO[str]],
    profiles: Sequence[CountryProfile],
    indent: int = 2,
) -> int:
    """Write profiles as a JSON array; returns the profile count."""
    owned = isinstance(path_or_file, str)
    fh = open(path_or_file, "w") if owned else path_or_file
    try:
        json.dump([profile_to_dict(p) for p in profiles], fh, indent=indent)
        fh.write("\n")
    finally:
        if owned:
            fh.close()
    return len(profiles)


def load_profiles(path_or_file: Union[str, IO[str]]) -> List[CountryProfile]:
    """Read a JSON array of profiles (inverse of :func:`dump_profiles`)."""
    owned = isinstance(path_or_file, str)
    fh = open(path_or_file, "r") if owned else path_or_file
    try:
        data = json.load(fh)
    finally:
        if owned:
            fh.close()
    if not isinstance(data, list):
        raise ConfigError("profiles file must contain a JSON array")
    return [profile_from_dict(entry) for entry in data]
