"""Synthetic test lists: Tranco, Majestic, Citizen Lab, GreatFire.

Table 3 compares the tampered domains the passive pipeline finds against
the lists an active scanner would have tested.  The synthetic lists have
the same *structural* properties as their namesakes:

* **Tranco_N** -- the top N domains by global popularity with mild rank
  noise (popularity lists track real demand closely).
* **Majestic_N** -- top N under a noisier, link-graph-flavoured ranking
  (systematically worse at matching what users request).
* **GreatFire / Citizen Lab** -- curated censorship lists: they sample
  from *sensitive* categories only, with partial coverage and some stale
  entries that no longer exist, which is exactly why curated lists miss
  tampered domains in the paper.
* **Citizenlab_country** -- small per-country lists drawn from each
  country's actual blocklist (best curated coverage, tiny size).

List sizes scale with the universe: the paper's 1K/10K/100K/1M tiers map
to fixed fractions of the synthetic population.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro._util import derive_rng
from repro.core.testlists import TestList
from repro.workloads.domains import DomainUniverse

__all__ = ["build_test_lists", "TRANCO_TIERS", "SENSITIVE_CATEGORIES"]

#: Tier name → fraction of the universe the tier covers.
TRANCO_TIERS: Tuple[Tuple[str, float], ...] = (
    ("1K", 0.02),
    ("10K", 0.08),
    ("100K", 0.30),
    ("1M", 0.80),
)

#: Categories curated censorship lists concentrate on.
SENSITIVE_CATEGORIES: Tuple[str, ...] = (
    "News",
    "Social Networks",
    "Chat",
    "Adult Themes",
    "Streaming",
)


def _noisy_top(
    universe: DomainUniverse, fraction: float, rng: random.Random, noise: float
) -> List[str]:
    """Top ``fraction`` of the universe under a noisy re-ranking."""
    n = max(1, int(round(fraction * len(universe))))
    scored = [
        (domain.rank + rng.gauss(0.0, noise * len(universe)), domain.name)
        for domain in universe.domains
    ]
    scored.sort()
    return [name for _, name in scored[:n]]


def _curated(
    universe: DomainUniverse,
    rng: random.Random,
    coverage: float,
    stale_entries: int,
    categories: Sequence[str] = SENSITIVE_CATEGORIES,
) -> List[str]:
    """A curated list: partial coverage of sensitive categories + staleness."""
    entries: List[str] = []
    for category in categories:
        members = [d.name for d in universe.in_category(category)]
        count = int(round(coverage * len(members)))
        entries.extend(rng.sample(members, min(count, len(members))))
    entries.extend(f"stale-entry-{i}.example" for i in range(stale_entries))
    return entries


def build_test_lists(
    universe: DomainUniverse,
    seed: int = 0,
    country_blocklists: Optional[Mapping[str, Sequence[str]]] = None,
) -> Dict[str, TestList]:
    """Build the full Table 3 list battery for a universe.

    ``country_blocklists`` (country code → blocked domains) enables the
    per-country Citizen Lab lists; pass ``world.blocklist(code)`` values.
    """
    lists: Dict[str, TestList] = {}

    rng_tranco = derive_rng(seed, "tranco")
    for tier, fraction in TRANCO_TIERS:
        lists[f"Tranco_{tier}"] = TestList.from_domains(
            f"Tranco_{tier}", _noisy_top(universe, fraction, rng_tranco, noise=0.02)
        )

    rng_majestic = derive_rng(seed, "majestic")
    for tier, fraction in TRANCO_TIERS:
        lists[f"Majestic_{tier}"] = TestList.from_domains(
            f"Majestic_{tier}",
            _noisy_top(universe, fraction * 0.5, rng_majestic, noise=0.25),
        )

    rng_gf = derive_rng(seed, "greatfire")
    lists["Greatfire_all"] = TestList.from_domains(
        "Greatfire_all", _curated(universe, rng_gf, coverage=0.30, stale_entries=40)
    )
    lists["Greatfire_30d"] = TestList.from_domains(
        "Greatfire_30d", _curated(universe, rng_gf, coverage=0.10, stale_entries=10)
    )

    rng_cl = derive_rng(seed, "citizenlab")
    lists["Citizenlab"] = TestList.from_domains(
        "Citizenlab", _curated(universe, rng_cl, coverage=0.12, stale_entries=25)
    )
    lists["Citizenlab_global"] = TestList.from_domains(
        "Citizenlab_global", _curated(universe, rng_cl, coverage=0.04, stale_entries=5)
    )

    if country_blocklists:
        rng_cc = derive_rng(seed, "citizenlab-country")
        entries: List[str] = []
        for code in sorted(country_blocklists):
            blocked = sorted(country_blocklists[code])
            count = max(1, int(round(0.05 * len(blocked)))) if blocked else 0
            entries.extend(rng_cc.sample(blocked, min(count, len(blocked))))
        lists["Citizenlab_country"] = TestList.from_domains("Citizenlab_country", entries)

    return lists
