"""The assembled world: geography, domains, blocklists, middleboxes.

:class:`World` wires every substrate together:

* registers each country's ASNs in the :class:`~repro.cdn.geo.GeoDatabase`
  and mints persistent client populations per ASN;
* derives each country's **blocklist** from its profile (category
  coverage plus a share of globally popular domains) and partitions it
  among the country's middlebox deployments;
* instantiates one stateful :class:`~repro.middlebox.device.TamperingMiddlebox`
  per (deployment, covered ASN), plus per-country enterprise keyword
  firewalls that a fraction of connections pass through;
* simulates individual connections end to end
  (:meth:`World.simulate_connection`), producing the
  :class:`~repro.cdn.collector.ConnectionSample` records the analysis
  pipeline consumes.

Everything is derived deterministically from ``seed``.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro._util import chunk_payload, derive_rng, stable_hash, zipf_weights
from repro.cdn.categorize import CategoryDB
from repro.cdn.collector import ConnectionSample
from repro.cdn.edge import EdgeConfig, make_edge_server
from repro.cdn.geo import GeoDatabase
from repro.cdn.sampler import CaptureConfig, capture_sample
from repro.errors import WorldError
from repro.middlebox.device import TamperingMiddlebox
from repro.middlebox.policy import (
    BlockPolicy,
    DomainRule,
    ExactIpRule,
    KeywordRule,
    PortRule,
    SubstringRule,
)
from repro.middlebox.vendors import VENDOR_PRESETS, make_preset
from repro.netstack.http import build_http_request
from repro.netstack.tcp import HostConfig, IpIdMode, TcpClient
from repro.netstack.tls import build_client_hello
from repro.network.conditions import NetworkConditions
from repro.network.endpoints import (
    AbortiveCloseClient,
    HappyEyeballsCanceller,
    ImpatientClient,
    NeverCloseClient,
    SilentSynClient,
    ZMapScanner,
)
from repro.network.sim import PathSimulator
from repro.workloads.domains import DomainUniverse
from repro.workloads.profiles import CountryProfile, DeploymentSpec, default_profiles

__all__ = ["World", "ENTERPRISE_KEYWORDS"]

#: Keywords enterprise firewalls hunt for in request payloads.
ENTERPRISE_KEYWORDS: Tuple[bytes, ...] = (b"confidential-export", b"proxy-autoconfig")

#: Vendor presets whose trigger is the SYN (they need IP rules, not domains).
_SYN_STAGE_VENDORS = frozenset(
    {"syn_blackhole", "syn_rst_injector", "syn_rstack_injector", "gfw_syn"}
)
_ENTERPRISE_VENDORS = frozenset({"enterprise_firewall", "enterprise_rst"})

#: First ASN number handed out (purely cosmetic).
_ASN_BASE = 1000


@dataclasses.dataclass
class _Deployment:
    """One instantiated deployment: spec, policy inputs, device per ASN."""

    spec: DeploymentSpec
    blocked_domains: FrozenSet[str]
    covered_asns: FrozenSet[int]
    devices: Dict[int, TamperingMiddlebox]


@dataclasses.dataclass
class _CountryState:
    """Everything built for one country."""

    profile: CountryProfile
    asns: List[int]
    asn_weights: List[float]
    blocklist: FrozenSet[str]
    deployments: List[_Deployment]
    enterprise_devices: List[TamperingMiddlebox]
    clients_v4: Dict[int, List[str]]
    clients_v6: Dict[int, List[str]]


class World:
    """The synthetic global study environment."""

    def __init__(
        self,
        profiles: Optional[Sequence[CountryProfile]] = None,
        seed: int = 0,
        n_domains: int = 3000,
        clients_per_asn: int = 20,
        capture: Optional[CaptureConfig] = None,
    ) -> None:
        if clients_per_asn < 1:
            raise WorldError("clients_per_asn must be >= 1")
        self.seed = seed
        self.profiles: List[CountryProfile] = list(profiles) if profiles is not None else default_profiles()
        if not self.profiles:
            raise WorldError("world needs at least one country profile")
        codes = [p.code for p in self.profiles]
        if len(set(codes)) != len(codes):
            raise WorldError("duplicate country codes in profiles")

        self.universe = DomainUniverse.generate(seed=seed, n_domains=n_domains)
        self.categories: CategoryDB = self.universe.category_db()
        self.geo = GeoDatabase()
        self.capture = capture or CaptureConfig()
        self._clients_per_asn = clients_per_asn
        self._countries: Dict[str, _CountryState] = {}
        self._edge_ip_cache: Dict[Tuple[str, int], str] = {}
        self._next_asn = _ASN_BASE
        for profile in self.profiles:
            self._countries[profile.code] = self._build_country(profile)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_country(self, profile: CountryProfile) -> _CountryState:
        rng = derive_rng(self.seed, f"country:{profile.code}")

        asns = []
        for _ in range(profile.n_asns):
            asn = self._next_asn
            self._next_asn += 1
            self.geo.register_asn(profile.code, asn)
            asns.append(asn)
        asn_weights = zipf_weights(len(asns), exponent=profile.asn_skew)

        blocklist = self._build_blocklist(profile, rng)
        partitions = self._partition_blocklist(profile, blocklist, rng)

        deployments: List[_Deployment] = []
        for index, (spec, domains) in enumerate(zip(profile.deployments, partitions)):
            covered = self._cover_asns(asns, spec.asn_share, rng)
            policy = self._build_policy(profile, spec, domains, first=index == 0)
            devices = {
                asn: make_preset(
                    spec.vendor,
                    policy,
                    seed=stable_hash(self.seed, "device", profile.code, spec.vendor, index, asn),
                    categorizer=self.categories.as_lookup(),
                )
                for asn in covered
            }
            deployments.append(
                _Deployment(
                    spec=spec,
                    blocked_domains=frozenset(domains),
                    covered_asns=frozenset(covered),
                    devices=devices,
                )
            )

        enterprise_devices: List[TamperingMiddlebox] = []
        if profile.enterprise_flow_share > 0:
            keyword_policy = BlockPolicy([KeywordRule(ENTERPRISE_KEYWORDS)], name="enterprise-keywords")
            for i, vendor in enumerate(("enterprise_firewall", "enterprise_rst")):
                enterprise_devices.append(
                    make_preset(
                        vendor,
                        keyword_policy,
                        seed=stable_hash(self.seed, "enterprise", profile.code, i),
                    )
                )

        # Pool sizes scale with each family's traffic share so the
        # connections-per-client rate (and with it repeat-visit and
        # residual-collateral behaviour) is version-neutral.
        n_v4 = max(4, round(self._clients_per_asn * (1.0 - profile.ipv6_share)))
        n_v6 = max(4, round(self._clients_per_asn * profile.ipv6_share))
        clients_v4 = {
            asn: [self.geo.client_address(rng, asn, version=4) for _ in range(n_v4)]
            for asn in asns
        }
        clients_v6 = {
            asn: [self.geo.client_address(rng, asn, version=6) for _ in range(n_v6)]
            for asn in asns
        }

        return _CountryState(
            profile=profile,
            asns=asns,
            asn_weights=asn_weights,
            blocklist=frozenset(blocklist),
            deployments=deployments,
            enterprise_devices=enterprise_devices,
            clients_v4=clients_v4,
            clients_v6=clients_v6,
        )

    def _build_blocklist(self, profile: CountryProfile, rng: random.Random) -> Set[str]:
        """Derive the country's blocked-domain set from its profile."""
        blocked: Set[str] = set()
        for category, coverage in profile.blocked_categories:
            members = self.universe.in_category(category)
            if not members:
                continue
            count = max(1, int(round(coverage * len(members)))) if coverage > 0 else 0
            picked = rng.sample(members, min(count, len(members)))
            blocked.update(d.name for d in picked)
        if profile.blocked_top_share > 0:
            top = self.universe.top(200)
            count = max(1, int(round(profile.blocked_top_share * len(top))))
            blocked.update(d.name for d in rng.sample(top, min(count, len(top))))
        return blocked

    def _partition_blocklist(
        self, profile: CountryProfile, blocklist: Set[str], rng: random.Random
    ) -> List[Set[str]]:
        """Assign each blocked domain to exactly one deployment.

        Deficit round-robin in global popularity order: demand for
        blocked content concentrates on the most popular blocked
        domains, so interleaving by rank gives every deployment its
        ``blocked_share`` of the *demand*, not merely of the domain
        count (a random assignment would make the effective vendor mix
        a per-seed lottery over a handful of hot names).
        """
        specs = profile.deployments
        parts: List[Set[str]] = [set() for _ in specs]
        if not specs or not blocklist:
            return parts
        total = sum(s.blocked_share for s in specs)
        shares = [s.blocked_share / total for s in specs]
        ranked = sorted(blocklist, key=lambda name: self.universe.get(name).rank)
        credits = [0.0] * len(specs)
        for domain in ranked:
            credits = [c + share for c, share in zip(credits, shares)]
            index = max(range(len(specs)), key=lambda i: credits[i])
            credits[index] -= 1.0
            parts[index].add(domain)
        return parts

    @staticmethod
    def _cover_asns(asns: Sequence[int], share: float, rng: random.Random) -> List[int]:
        if share >= 1.0:
            return list(asns)
        count = max(1, int(round(share * len(asns))))
        return sorted(rng.sample(list(asns), min(count, len(asns))))

    def _build_policy(
        self,
        profile: CountryProfile,
        spec: DeploymentSpec,
        domains: Set[str],
        first: bool,
    ) -> BlockPolicy:
        """Build the device policy for one deployment's domain partition."""
        rules = []
        if spec.vendor in _SYN_STAGE_VENDORS:
            addresses = set()
            for name in domains:
                addresses.add(self.edge_ip_for(name, 4))
                addresses.add(self.edge_ip_for(name, 6))
            rules.append(ExactIpRule(addresses))
        else:
            rules.append(DomainRule(domains))
            if first and profile.substring_fragments:
                rules.append(SubstringRule(profile.substring_fragments))
            if spec.vendor in _ENTERPRISE_VENDORS:
                rules.append(KeywordRule(ENTERPRISE_KEYWORDS))
        if profile.http_only_blocking:
            rules = [PortRule(rule, frozenset({80})) for rule in rules]
        return BlockPolicy(rules, name=f"{profile.code}:{spec.vendor}")

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def country(self, code: str) -> _CountryState:
        try:
            return self._countries[code]
        except KeyError:
            raise WorldError(f"unknown country {code!r}") from None

    @property
    def country_codes(self) -> List[str]:
        return list(self._countries)

    def blocklist(self, code: str) -> FrozenSet[str]:
        """The blocked-domain set of one country."""
        return self.country(code).blocklist

    def edge_ip_for(self, domain: str, version: int = 4) -> str:
        """Cached deterministic domain → edge address resolution."""
        key = (domain, version)
        cached = self._edge_ip_cache.get(key)
        if cached is None:
            cached = self.universe.edge_ip_for(domain, version)
            self._edge_ip_cache[key] = cached
        return cached

    def is_blocked(self, code: str, domain: str) -> bool:
        """Ground truth: is ``domain`` on ``code``'s blocklist?

        Includes substring over-blocking.
        """
        state = self.country(code)
        if domain in state.blocklist:
            return True
        return any(frag in domain for frag in state.profile.substring_fragments)

    def middlebox_chain(self, code: str, asn: int, include_enterprise: bool = False) -> List[TamperingMiddlebox]:
        """The devices on-path for connections from (country, ASN)."""
        state = self.country(code)
        chain = [
            deployment.devices[asn]
            for deployment in state.deployments
            if asn in deployment.covered_asns
        ]
        if include_enterprise and state.enterprise_devices:
            chain = chain + [state.enterprise_devices[asn % len(state.enterprise_devices)]]
        return chain

    # ------------------------------------------------------------------
    # Connection simulation
    # ------------------------------------------------------------------
    def run_connection(self, spec):
        """Simulate one connection end to end.

        Returns ``(result, client, fired_vendor)``: the full
        :class:`~repro.network.sim.SimResult` (both directions -- the
        active-measurement comparator reads the client side), the client
        endpoint (terminal state), and the name of the device that fired,
        if any.  ``spec`` is a
        :class:`repro.workloads.traffic.ConnectionSpec`.
        """
        rng = derive_rng(self.seed, f"conn:{spec.conn_id}")
        edge_ip = self.edge_ip_for(spec.domain, spec.ip_version)
        port = 443 if spec.protocol == "tls" else 80
        server = make_edge_server(
            edge_ip,
            EdgeConfig(port=port),
            seed=stable_hash(self.seed, "edge", spec.conn_id),
        )

        client = self._build_client(spec, edge_ip, port, rng)
        chain = self.middlebox_chain(spec.country, spec.asn, include_enterprise=spec.behind_enterprise)
        triggers_before = [d.triggers for d in chain]

        # A touch of real-world loss: occasionally one packet of a forged
        # burst vanishes, blurring single-RST vs multi-RST signatures for
        # the same censor -- the Appendix B observation.
        conditions = NetworkConditions.random_path(rng, n_middleboxes=len(chain), loss=0.001)
        sim = PathSimulator(
            client,
            server,
            middleboxes=chain,
            conditions=conditions,
            seed=stable_hash(self.seed, "path", spec.conn_id),
        )
        result = sim.run(start=spec.ts, deadline=15.0)

        fired_vendor: Optional[str] = None
        for device, before in zip(chain, triggers_before):
            if device.triggers > before:
                fired_vendor = device.name
                break
        conn_key = _conn_key(spec.client_ip, spec.client_port, edge_ip, port)
        for device in chain:
            device.forget_flow(conn_key)
        return result, client, fired_vendor

    def simulate_connection(self, spec) -> Optional[ConnectionSample]:
        """Simulate one connection and return its server-side sample.

        ``spec`` is a :class:`repro.workloads.traffic.ConnectionSpec`.
        Returns None when the server received nothing (unobservable).
        """
        result, _client, fired_vendor = self.run_connection(spec)
        return capture_sample(
            result,
            conn_id=spec.conn_id,
            config=self.capture,
            seed=stable_hash(self.seed, "capture", spec.conn_id),
            truth_tampered=fired_vendor is not None,
            truth_vendor=fired_vendor,
            truth_domain=spec.domain,
            truth_client_kind=spec.client_kind,
        )

    def _build_client(self, spec, edge_ip: str, port: int, rng: random.Random):
        """Construct the client endpoint for one connection spec."""
        kind = spec.client_kind
        isn = rng.randrange(0, 1 << 32)
        if kind == "zmap":
            return ZMapScanner(spec.client_ip, spec.client_port, edge_ip, port, isn=isn)
        if kind == "silent_syn":
            return SilentSynClient(spec.client_ip, spec.client_port, edge_ip, port, isn=isn)
        if kind == "happy_rst":
            return HappyEyeballsCanceller(spec.client_ip, spec.client_port, edge_ip, port, isn=isn)

        initial_ttl = 64 if rng.random() < 0.7 else 128
        ip_id_mode = IpIdMode.ZERO if rng.random() < 0.15 else IpIdMode.COUNTER
        config = HostConfig(
            ip=spec.client_ip,
            port=spec.client_port,
            initial_ttl=initial_ttl,
            ip_id_mode=ip_id_mode,
            ip_id_start=rng.randrange(0, 0x10000),
            isn=isn,
        )
        segments = self._request_segments(spec, rng)
        if kind == "impatient":
            return ImpatientClient(config, edge_ip, port, request_segments=segments, patience=0.4)
        if kind == "abortive_close":
            return AbortiveCloseClient(config, edge_ip, port, request_segments=segments)
        if kind == "never_close":
            return NeverCloseClient(config, edge_ip, port, request_segments=segments)
        return TcpClient(config, edge_ip, port, request_segments=segments)

    def _request_segments(self, spec, rng: random.Random) -> List[bytes]:
        """The application payload, pre-split into TCP segments."""
        host = spec.host
        if spec.protocol == "tls":
            payload = build_client_hello(host, seed=stable_hash(self.seed, "ch", spec.conn_id))
            if spec.split_segments > 1:
                # Large ClientHello split across segments (e.g. big ALPN /
                # key-share lists); DPI reassembles before extracting SNI.
                half = max(1, len(payload) // spec.split_segments)
                return chunk_payload(payload, half)
            return [payload]
        # HTTP: request head in the first segment; any body (where the
        # enterprise keyword hides) in subsequent segments.
        if spec.keyword or spec.split_segments > 1:
            body = b"data=" + (b"x" * 120)
            if spec.keyword:
                body += b"&token=" + ENTERPRISE_KEYWORDS[0]
            body += b"&pad=" + bytes(rng.randrange(97, 123) for _ in range(64))
            head = build_http_request(
                host,
                path="/submit",
                method="POST",
                extra_headers={"Content-Length": str(len(body))},
            )
            return [head, body]
        path = "/" if rng.random() < 0.6 else f"/page/{rng.randrange(1000)}"
        return [build_http_request(host, path=path)]


def _conn_key(a_ip: str, a_port: int, b_ip: str, b_port: int) -> Tuple[str, int, str, int]:
    lo, hi = sorted(((a_ip, a_port), (b_ip, b_port)))
    return (lo[0], lo[1], hi[0], hi[1])
