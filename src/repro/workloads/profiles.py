"""Country profiles: who connects, from where, and who tampers.

Each :class:`CountryProfile` encodes the traffic and tampering structure
of one country: traffic weight, ASN count and concentration, IPv6 and
TLS shares, client-personality mix, how often users request blocked
content (with diurnal and weekend modulation), which content categories
the country blocks and how completely, and the middlebox *deployments* --
(vendor preset, share of the blocklist, share of ASNs covered) triples.

The parameter values are tuned so the reproduction matches the *shape*
of the paper's results (Figures 1, 4-7, Tables 2-3): Turkmenistan's
near-blanket HTTP blocking, China's centralized GFW burst signatures,
Iran's ClientHello drops, Russia's decentralized heterogeneity, South
Korea's ACK-guessing injector, the Western countries' sparse enterprise
filtering, and so on.  Absolute percentages are calibration, not claims.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

__all__ = ["DeploymentSpec", "CountryProfile", "default_profiles", "profile_for", "PAPER_FIGURE4_COUNTRIES"]


@dataclasses.dataclass(frozen=True)
class DeploymentSpec:
    """One middlebox deployment within a country.

    ``vendor``
        A preset name from :data:`repro.middlebox.vendors.VENDOR_PRESETS`.
    ``blocked_share``
        Fraction of the country's blocklist this device enforces (the
        world model partitions blocked domains among deployments; shares
        are normalised).
    ``asn_share``
        Fraction of the country's ASNs where the device sits on-path;
        1.0 models a centralized national system, <1 a patchwork.
    """

    vendor: str
    blocked_share: float
    asn_share: float = 1.0

    def __post_init__(self) -> None:
        if self.blocked_share <= 0:
            raise ConfigError("blocked_share must be positive")
        if not 0 < self.asn_share <= 1:
            raise ConfigError("asn_share must be in (0, 1]")


@dataclasses.dataclass(frozen=True)
class CountryProfile:
    """Everything the generator needs to know about one country."""

    code: str
    name: str
    weight: float  # share of global connections
    tz_offset: float = 0.0  # hours east of UTC
    n_asns: int = 6
    asn_skew: float = 1.0  # Zipf exponent over ASN sizes
    ipv6_share: float = 0.25
    tls_share: float = 0.80
    # Demand for blocked content and its temporal modulation.
    p_blocked: float = 0.0
    night_boost: float = 1.6  # multiplier on p_blocked, local 00:00-08:00
    weekend_factor: float = 0.8  # multiplier on p_blocked on Sat/Sun
    local_mix: float = 0.25  # share of demand using the local ranking
    #: Extra probability that a blocked-content request uses TLS (users
    #: reaching for sensitive content prefer HTTPS); drives the paper's
    #: Figure 7(b) observation that TLS is tampered more than HTTP.
    blocked_tls_boost: float = 0.5
    # Blocking policy.
    blocked_categories: Tuple[Tuple[str, float], ...] = ()  # (category, coverage)
    blocked_top_share: float = 0.0  # also block this share of global top-200
    substring_fragments: Tuple[str, ...] = ()
    http_only_blocking: bool = False  # TM-style: policies scoped to port 80
    deployments: Tuple[DeploymentSpec, ...] = ()
    # Client-mix rates (fractions of connections).
    scanner_rate: float = 0.001
    silent_syn_rate: float = 0.015  # SYN-flood residue, HE losers (§4.2)
    happy_rst_rate: float = 0.006
    impatient_rate: float = 0.002
    abortive_close_rate: float = 0.03  # graceful close followed by a RST
    never_close_rate: float = 0.012  # keep-alive: data then silence, no FIN
    keyword_rate: float = 0.004  # requests carrying an enterprise-blocked keyword
    split_request_rate: float = 0.12  # requests sent as 2+ data segments
    enterprise_flow_share: float = 0.05  # connections behind a corporate firewall

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigError(f"{self.code}: weight must be positive")
        if not 0 <= self.p_blocked <= 1:
            raise ConfigError(f"{self.code}: p_blocked must be in [0, 1]")
        if self.n_asns < 1:
            raise ConfigError(f"{self.code}: need at least one ASN")
        rates = (
            self.scanner_rate,
            self.silent_syn_rate,
            self.happy_rst_rate,
            self.impatient_rate,
            self.abortive_close_rate,
            self.never_close_rate,
        )
        if sum(rates) > 0.5:
            raise ConfigError(f"{self.code}: anomalous client mix exceeds 50%")

    @property
    def has_tampering(self) -> bool:
        return bool(self.deployments) and self.p_blocked > 0


def _d(vendor: str, blocked_share: float, asn_share: float = 1.0) -> DeploymentSpec:
    return DeploymentSpec(vendor=vendor, blocked_share=blocked_share, asn_share=asn_share)


#: Figure 4's x-axis, for report ordering.
PAPER_FIGURE4_COUNTRIES: Tuple[str, ...] = (
    "TM", "PE", "UZ", "CU", "SA", "KZ", "RU", "PK", "NI", "UA", "BD", "MX",
    "IR", "OM", "AZ", "AE", "SD", "CN", "BY", "EG", "YE", "AF", "MM", "IQ",
    "KW", "TR", "BH", "ET", "IN", "HN", "MY", "TH", "KR", "VN", "VE", "GB",
    "SY", "US", "DE",
)


def default_profiles() -> List[CountryProfile]:
    """The built-in world: ~45 countries tuned to the paper's shape."""
    profiles: List[CountryProfile] = [
        # ------------------------------------------------------------------
        # Heavy, centralized censors
        # ------------------------------------------------------------------
        CountryProfile(
            code="TM", name="Turkmenistan", weight=0.45, tz_offset=5, n_asns=2,
            ipv6_share=0.02, tls_share=0.12, p_blocked=0.95, night_boost=1.2,
            blocked_tls_boost=0.0,
            blocked_categories=(
                ("News", 0.9), ("Social Networks", 0.9), ("Chat", 0.85),
                ("Streaming", 0.8), ("Adult Themes", 0.9), ("Technology", 0.5),
                ("Business", 0.4), ("Content Servers", 0.5),
            ),
            blocked_top_share=0.5,
            substring_fragments=("wn.com",),
            http_only_blocking=True,
            deployments=(
                # In-path drops of the offending HTTP request (post-ACK
                # RST at the server) alongside off-path injection after
                # the request (post-PSH RST), both HTTP-scoped.
                _d("tm_http", 0.45),
                _d("single_rst", 0.45),
                _d("syn_blackhole", 0.10),
            ),
        ),
        CountryProfile(
            code="IR", name="Iran", weight=1.6, tz_offset=3.5, n_asns=8,
            ipv6_share=0.12, tls_share=0.85, p_blocked=0.42, night_boost=1.9,
            weekend_factor=0.65,
            blocked_categories=(
                ("Content Servers", 0.6), ("Technology", 0.35),
                ("Social Networks", 0.8), ("News", 0.6), ("Business", 0.12),
            ),
            blocked_top_share=0.25,
            deployments=(
                _d("iran_drop", 0.38),
                _d("iran_rstack", 0.18),
                _d("iran_double_rstack", 0.12),
                _d("syn_blackhole", 0.10),
                _d("syn_rst_injector", 0.10),
                # A minority of networks inject after the request, which
                # is what makes any Iranian trigger domains visible to the
                # pipeline (the paper notes this visibility is limited).
                _d("single_rstack", 0.12),
            ),
        ),
        CountryProfile(
            code="CN", name="China", weight=8.0, tz_offset=8, n_asns=16,
            ipv6_share=0.30, tls_share=0.80, p_blocked=0.26, night_boost=1.7,
            blocked_categories=(
                ("Adult Themes", 0.55), ("Content Servers", 0.25),
                ("Education", 0.22), ("News", 0.5), ("Social Networks", 0.7),
            ),
            blocked_top_share=0.30,
            deployments=(
                _d("gfw", 0.38),
                _d("gfw_double_rstack", 0.20),
                _d("zero_ack_injector", 0.14),
                _d("gfw_syn", 0.12),
                _d("psh_blackhole", 0.08),
                _d("single_rst", 0.08),
            ),
        ),
        CountryProfile(
            code="CU", name="Cuba", weight=0.25, tz_offset=-5, n_asns=2,
            ipv6_share=0.05, tls_share=0.7, p_blocked=0.5,
            blocked_categories=(("News", 0.7), ("Social Networks", 0.6), ("Technology", 0.3)),
            blocked_top_share=0.2,
            deployments=(_d("syn_blackhole", 0.4), _d("iran_drop", 0.35), _d("single_rstack", 0.25)),
        ),
        CountryProfile(
            code="KP", name="North Korea", weight=0.01, tz_offset=9, n_asns=1,
            ipv6_share=0.0, tls_share=0.5, p_blocked=0.95, night_boost=1.0,
            blocked_categories=tuple((c, 0.95) for c in (
                "News", "Social Networks", "Chat", "Streaming", "Technology",
                "Business", "Content Servers", "Adult Themes",
            )),
            blocked_top_share=0.9,
            deployments=(_d("syn_blackhole", 0.7), _d("syn_rst_injector", 0.3)),
        ),
        # ------------------------------------------------------------------
        # Central-Asian neighbours (post-ACK RST+ACK style)
        # ------------------------------------------------------------------
        CountryProfile(
            code="UZ", name="Uzbekistan", weight=0.5, tz_offset=5, n_asns=4,
            ipv6_share=0.08, tls_share=0.8, p_blocked=0.32,
            blocked_categories=(("News", 0.6), ("Social Networks", 0.5), ("Adult Themes", 0.5)),
            blocked_top_share=0.15,
            deployments=(_d("iran_rstack", 0.75), _d("syn_blackhole", 0.25)),
        ),
        CountryProfile(
            code="KZ", name="Kazakhstan", weight=0.7, tz_offset=6, n_asns=6,
            ipv6_share=0.15, tls_share=0.82, p_blocked=0.22,
            blocked_categories=(("News", 0.5), ("Social Networks", 0.4), ("Adult Themes", 0.5)),
            blocked_top_share=0.12,
            deployments=(_d("iran_rstack", 0.7, asn_share=0.9), _d("psh_blackhole", 0.3, asn_share=0.6)),
        ),
        CountryProfile(
            code="AZ", name="Azerbaijan", weight=0.3, tz_offset=4, n_asns=4,
            p_blocked=0.2,
            blocked_categories=(("News", 0.5), ("Social Networks", 0.35)),
            deployments=(_d("iran_drop", 0.6), _d("single_rst", 0.4)),
        ),
        CountryProfile(
            code="TJ", name="Tajikistan", weight=0.1, tz_offset=5, n_asns=2,
            p_blocked=0.25,
            blocked_categories=(("News", 0.5), ("Social Networks", 0.5)),
            deployments=(_d("iran_drop", 0.6), _d("syn_blackhole", 0.4)),
        ),
        # ------------------------------------------------------------------
        # Decentralized regimes
        # ------------------------------------------------------------------
        CountryProfile(
            code="RU", name="Russia", weight=4.5, tz_offset=3, n_asns=20,
            asn_skew=0.7, ipv6_share=0.28, tls_share=0.85, p_blocked=0.2,
            blocked_categories=(
                ("Hobbies & Interests", 0.35), ("Business", 0.12),
                ("Advertisements", 0.18), ("News", 0.4), ("Social Networks", 0.3),
            ),
            blocked_top_share=0.18,
            deployments=(
                _d("single_rst", 0.25, asn_share=0.55),
                _d("psh_blackhole", 0.2, asn_share=0.5),
                _d("single_rstack", 0.2, asn_share=0.45),
                _d("enterprise_rst", 0.12, asn_share=0.5),
                _d("syn_rst_injector", 0.13, asn_share=0.4),
                _d("same_ack_injector", 0.1, asn_share=0.35),
            ),
        ),
        CountryProfile(
            code="UA", name="Ukraine", weight=1.2, tz_offset=2, n_asns=14,
            asn_skew=0.6, ipv6_share=0.22, tls_share=0.85, p_blocked=0.24,
            split_request_rate=0.5,
            blocked_categories=(("News", 0.35), ("Hobbies & Interests", 0.2), ("Business", 0.1)),
            deployments=(
                _d("enterprise_firewall", 0.6, asn_share=0.6),
                _d("single_rstack", 0.25, asn_share=0.45),
                _d("psh_blackhole", 0.15, asn_share=0.4),
            ),
        ),
        CountryProfile(
            code="PK", name="Pakistan", weight=1.1, tz_offset=5, n_asns=9,
            asn_skew=0.8, ipv6_share=0.1, tls_share=0.78, p_blocked=0.26,
            blocked_categories=(("Adult Themes", 0.6), ("News", 0.3), ("Streaming", 0.25)),
            blocked_top_share=0.1,
            deployments=(
                _d("iran_drop", 0.35, asn_share=0.7),
                _d("single_rst", 0.35, asn_share=0.55),
                _d("syn_blackhole", 0.3, asn_share=0.5),
            ),
        ),
        CountryProfile(
            code="BY", name="Belarus", weight=0.35, tz_offset=3, n_asns=4,
            p_blocked=0.18,
            blocked_categories=(("News", 0.5), ("Social Networks", 0.4)),
            deployments=(_d("single_rst", 0.6, asn_share=0.8), _d("psh_blackhole", 0.4, asn_share=0.6)),
        ),
        # ------------------------------------------------------------------
        # Middle East & North Africa
        # ------------------------------------------------------------------
        CountryProfile(
            code="SA", name="Saudi Arabia", weight=0.9, tz_offset=3, n_asns=5,
            ipv6_share=0.35, p_blocked=0.3,
            blocked_categories=(("Adult Themes", 0.85), ("Gaming", 0.2), ("Streaming", 0.25)),
            deployments=(_d("single_rstack", 0.6), _d("psh_blackhole", 0.4)),
        ),
        CountryProfile(
            code="EG", name="Egypt", weight=1.0, tz_offset=2, n_asns=6,
            p_blocked=0.18,
            blocked_categories=(("News", 0.5), ("Adult Themes", 0.6)),
            deployments=(_d("syn_blackhole", 0.5, asn_share=0.9), _d("psh_blackhole", 0.5, asn_share=0.8)),
        ),
        CountryProfile(
            code="AE", name="United Arab Emirates", weight=0.6, tz_offset=4, n_asns=3,
            ipv6_share=0.4, p_blocked=0.22,
            blocked_categories=(("Adult Themes", 0.9), ("Chat", 0.45), ("Gaming", 0.2)),
            deployments=(_d("single_rstack", 0.7), _d("iran_drop", 0.3)),
        ),
        CountryProfile(
            code="IQ", name="Iraq", weight=0.5, tz_offset=3, n_asns=6,
            p_blocked=0.16,
            blocked_categories=(("Adult Themes", 0.5), ("News", 0.3)),
            deployments=(_d("single_rst", 0.5, asn_share=0.7), _d("syn_blackhole", 0.5, asn_share=0.6)),
        ),
        CountryProfile(
            code="SY", name="Syria", weight=0.2, tz_offset=2, n_asns=2,
            p_blocked=0.3,
            blocked_categories=(("News", 0.6), ("Social Networks", 0.5), ("Chat", 0.4)),
            deployments=(_d("iran_drop", 0.5), _d("single_rst", 0.5)),
        ),
        CountryProfile(
            code="YE", name="Yemen", weight=0.15, tz_offset=3, n_asns=2,
            p_blocked=0.22,
            blocked_categories=(("Adult Themes", 0.6), ("News", 0.4)),
            deployments=(_d("psh_blackhole", 0.6), _d("single_rstack", 0.4)),
        ),
        CountryProfile(
            code="OM", name="Oman", weight=0.2, tz_offset=4, n_asns=2,
            p_blocked=0.2,
            blocked_categories=(("Adult Themes", 0.8), ("Chat", 0.3)),
            deployments=(_d("single_rstack", 0.7), _d("syn_blackhole", 0.3)),
        ),
        CountryProfile(
            code="KW", name="Kuwait", weight=0.25, tz_offset=3, n_asns=3,
            ipv6_share=0.5, p_blocked=0.15,
            blocked_categories=(("Adult Themes", 0.8),),
            deployments=(_d("single_rstack", 1.0),),
        ),
        CountryProfile(
            code="BH", name="Bahrain", weight=0.12, tz_offset=3, n_asns=2,
            p_blocked=0.14,
            blocked_categories=(("Adult Themes", 0.7), ("News", 0.3)),
            deployments=(_d("single_rstack", 0.6), _d("psh_blackhole", 0.4)),
        ),
        CountryProfile(
            code="SD", name="Sudan", weight=0.2, tz_offset=2, n_asns=2,
            p_blocked=0.2,
            blocked_categories=(("News", 0.4), ("Adult Themes", 0.5)),
            deployments=(_d("syn_blackhole", 0.5), _d("single_rst", 0.5)),
        ),
        CountryProfile(
            code="TR", name="Turkey", weight=1.8, tz_offset=3, n_asns=10,
            asn_skew=0.8, p_blocked=0.14,
            blocked_categories=(("News", 0.35), ("Adult Themes", 0.45), ("Social Networks", 0.25)),
            deployments=(
                _d("single_rst", 0.5, asn_share=0.8),
                _d("iran_drop", 0.3, asn_share=0.6),
                _d("enterprise_rst", 0.2, asn_share=0.5),
            ),
        ),
        CountryProfile(
            code="DZ", name="Algeria", weight=0.4, tz_offset=1, n_asns=3,
            p_blocked=0.12,
            blocked_categories=(("Adult Themes", 0.5), ("News", 0.25)),
            deployments=(_d("psh_blackhole", 0.6), _d("single_rst", 0.4)),
        ),
        # ------------------------------------------------------------------
        # South & Southeast Asia
        # ------------------------------------------------------------------
        CountryProfile(
            code="IN", name="India", weight=7.0, tz_offset=5.5, n_asns=18,
            asn_skew=0.9, ipv6_share=0.45, p_blocked=0.22, night_boost=2.0,
            blocked_categories=(
                ("Adult Themes", 0.45), ("Chat", 0.25), ("Content Servers", 0.18),
                ("Gaming", 0.12),
            ),
            blocked_top_share=0.12,
            deployments=(
                _d("single_rst", 0.4, asn_share=0.8),
                _d("psh_blackhole", 0.3, asn_share=0.7),
                _d("iran_drop", 0.15, asn_share=0.5),
                _d("syn_blackhole", 0.15, asn_share=0.5),
            ),
        ),
        CountryProfile(
            code="BD", name="Bangladesh", weight=0.9, tz_offset=6, n_asns=7,
            p_blocked=0.24,
            blocked_categories=(("Adult Themes", 0.5), ("News", 0.3), ("Gaming", 0.25)),
            deployments=(_d("single_rst", 0.5, asn_share=0.8), _d("iran_drop", 0.5, asn_share=0.7)),
        ),
        CountryProfile(
            code="MM", name="Myanmar", weight=0.3, tz_offset=6.5, n_asns=4,
            p_blocked=0.3,
            blocked_categories=(("News", 0.6), ("Social Networks", 0.6)),
            deployments=(_d("syn_blackhole", 0.5), _d("psh_blackhole", 0.5)),
        ),
        CountryProfile(
            code="TH", name="Thailand", weight=1.0, tz_offset=7, n_asns=8,
            p_blocked=0.12,
            blocked_categories=(("Adult Themes", 0.4), ("News", 0.3)),
            deployments=(_d("single_rst", 0.6, asn_share=0.75), _d("enterprise_rst", 0.4, asn_share=0.4)),
        ),
        CountryProfile(
            code="VN", name="Vietnam", weight=1.4, tz_offset=7, n_asns=8,
            p_blocked=0.1,
            blocked_categories=(("News", 0.35), ("Social Networks", 0.2)),
            deployments=(_d("psh_blackhole", 0.5, asn_share=0.7), _d("single_rst", 0.5, asn_share=0.6)),
        ),
        CountryProfile(
            code="MY", name="Malaysia", weight=0.8, tz_offset=8, n_asns=6,
            p_blocked=0.1,
            blocked_categories=(("Adult Themes", 0.45), ("Gaming", 0.15)),
            deployments=(_d("iran_drop", 0.5, asn_share=0.7), _d("single_rstack", 0.5, asn_share=0.6)),
        ),
        CountryProfile(
            code="ID", name="Indonesia", weight=2.2, tz_offset=7, n_asns=12,
            asn_skew=0.8, p_blocked=0.12,
            blocked_categories=(("Adult Themes", 0.55), ("Gaming", 0.2)),
            deployments=(_d("single_rstack", 0.5, asn_share=0.7), _d("psh_blackhole", 0.5, asn_share=0.6)),
        ),
        CountryProfile(
            code="LK", name="Sri Lanka", weight=0.25, tz_offset=5.5, n_asns=3,
            ipv6_share=0.3, p_blocked=0.45,
            blocked_categories=(("News", 0.5), ("Social Networks", 0.5), ("Adult Themes", 0.5)),
            deployments=(_d("iran_drop", 0.7), _d("iran_rstack", 0.3)),
        ),
        CountryProfile(
            code="AF", name="Afghanistan", weight=0.15, tz_offset=4.5, n_asns=2,
            p_blocked=0.25,
            blocked_categories=(("Adult Themes", 0.7), ("News", 0.4), ("Streaming", 0.3)),
            deployments=(_d("syn_blackhole", 0.5), _d("iran_drop", 0.5)),
        ),
        CountryProfile(
            code="LA", name="Laos", weight=0.08, tz_offset=7, n_asns=2,
            p_blocked=0.18,
            blocked_categories=(("News", 0.4), ("Social Networks", 0.3)),
            deployments=(_d("psh_blackhole", 1.0),),
        ),
        # ------------------------------------------------------------------
        # East Asia
        # ------------------------------------------------------------------
        CountryProfile(
            code="KR", name="South Korea", weight=2.0, tz_offset=9, n_asns=5,
            asn_skew=1.4, ipv6_share=0.2, p_blocked=0.11, night_boost=2.2,
            blocked_categories=(
                ("Adult Themes", 0.6), ("Gaming", 0.18), ("Login Screens", 0.4),
            ),
            deployments=(
                _d("korea_guesser", 0.65),
                _d("zero_ack_injector", 0.2),
                _d("single_rst", 0.15),
            ),
        ),
        CountryProfile(
            code="JP", name="Japan", weight=3.0, tz_offset=9, n_asns=12,
            ipv6_share=0.45, p_blocked=0.015,
            blocked_categories=(("Adult Themes", 0.05),),
            deployments=(_d("enterprise_firewall", 1.0, asn_share=0.3),),
        ),
        CountryProfile(
            code="TW", name="Taiwan", weight=0.9, tz_offset=8, n_asns=6,
            ipv6_share=0.4, p_blocked=0.01,
            blocked_categories=(("Adult Themes", 0.05),),
            deployments=(_d("enterprise_rst", 1.0, asn_share=0.3),),
        ),
        # ------------------------------------------------------------------
        # Americas
        # ------------------------------------------------------------------
        CountryProfile(
            code="PE", name="Peru", weight=0.6, tz_offset=-5, n_asns=5,
            asn_skew=1.2, p_blocked=0.58, night_boost=1.3,
            blocked_categories=(
                ("Advertisements", 0.65), ("Business", 0.07), ("Technology", 0.1),
            ),
            blocked_top_share=0.15,
            deployments=(
                _d("syn_rstack_injector", 0.35),
                _d("single_rstack", 0.4),
                _d("psh_blackhole", 0.25),
            ),
        ),
        CountryProfile(
            code="MX", name="Mexico", weight=1.8, tz_offset=-6, n_asns=10,
            asn_skew=0.7, p_blocked=0.33,
            blocked_categories=(
                ("Advertisements", 0.5), ("Technology", 0.12), ("Business", 0.1),
            ),
            deployments=(
                _d("single_rst", 0.4, asn_share=0.6),
                _d("enterprise_firewall", 0.3, asn_share=0.5),
                _d("syn_blackhole", 0.3, asn_share=0.45),
            ),
        ),
        CountryProfile(
            code="NI", name="Nicaragua", weight=0.1, tz_offset=-6, n_asns=2,
            p_blocked=0.28,
            blocked_categories=(("News", 0.5), ("Advertisements", 0.4)),
            deployments=(_d("single_rstack", 0.6), _d("iran_drop", 0.4)),
        ),
        CountryProfile(
            code="HN", name="Honduras", weight=0.1, tz_offset=-6, n_asns=2,
            p_blocked=0.12,
            blocked_categories=(("Advertisements", 0.35),),
            deployments=(_d("single_rst", 1.0),),
        ),
        CountryProfile(
            code="VE", name="Venezuela", weight=0.4, tz_offset=-4, n_asns=4,
            p_blocked=0.1,
            blocked_categories=(("News", 0.45), ("Streaming", 0.2)),
            deployments=(_d("syn_blackhole", 0.5, asn_share=0.8), _d("single_rst", 0.5, asn_share=0.6)),
        ),
        CountryProfile(
            code="BR", name="Brazil", weight=3.5, tz_offset=-3, n_asns=16,
            asn_skew=0.6, p_blocked=0.02,
            blocked_categories=(("Streaming", 0.08), ("Gaming", 0.04)),
            deployments=(_d("enterprise_rst", 0.6, asn_share=0.3), _d("single_rst", 0.4, asn_share=0.2)),
        ),
        # ------------------------------------------------------------------
        # The Western comparison set (sparse enterprise filtering)
        # ------------------------------------------------------------------
        CountryProfile(
            code="US", name="United States", weight=16.0, tz_offset=-5, n_asns=17,
            asn_skew=0.6, ipv6_share=0.45, p_blocked=0.02, night_boost=1.2,
            keyword_rate=0.01, enterprise_flow_share=0.12, split_request_rate=0.2,
            blocked_categories=(
                ("Content Servers", 0.006), ("Technology", 0.004), ("Business", 0.003),
            ),
            deployments=(
                _d("enterprise_firewall", 0.5, asn_share=0.4),
                _d("enterprise_rst", 0.3, asn_share=0.35),
                _d("single_rst", 0.2, asn_share=0.15),
            ),
        ),
        CountryProfile(
            code="GB", name="United Kingdom", weight=3.5, tz_offset=0, n_asns=10,
            asn_skew=0.7, ipv6_share=0.4, p_blocked=0.03,
            keyword_rate=0.009, enterprise_flow_share=0.1, split_request_rate=0.2,
            blocked_categories=(
                ("Content Servers", 0.005), ("Business", 0.003), ("Technology", 0.003),
                ("Streaming", 0.02),
            ),
            deployments=(
                _d("enterprise_firewall", 0.5, asn_share=0.45),
                _d("single_rst", 0.25, asn_share=0.2),
                _d("enterprise_rst", 0.25, asn_share=0.3),
            ),
        ),
        CountryProfile(
            code="DE", name="Germany", weight=4.0, tz_offset=1, n_asns=12,
            asn_skew=0.7, ipv6_share=0.5, p_blocked=0.025,
            keyword_rate=0.008, enterprise_flow_share=0.1, split_request_rate=0.2,
            blocked_categories=(
                ("Content Servers", 0.005), ("Business", 0.004), ("Technology", 0.002),
            ),
            deployments=(
                _d("enterprise_firewall", 0.55, asn_share=0.4),
                _d("enterprise_rst", 0.25, asn_share=0.3),
                _d("single_rstack", 0.2, asn_share=0.15),
            ),
        ),
        CountryProfile(
            code="FR", name="France", weight=3.0, tz_offset=1, n_asns=10,
            ipv6_share=0.5, p_blocked=0.02,
            blocked_categories=(("Streaming", 0.03), ("Content Servers", 0.004)),
            deployments=(_d("enterprise_firewall", 0.6, asn_share=0.35), _d("single_rst", 0.4, asn_share=0.15)),
        ),
        CountryProfile(
            code="NL", name="Netherlands", weight=1.5, tz_offset=1, n_asns=8,
            ipv6_share=0.5, p_blocked=0.012,
            blocked_categories=(("Content Servers", 0.003),),
            deployments=(_d("enterprise_firewall", 1.0, asn_share=0.3),),
        ),
        CountryProfile(
            code="CA", name="Canada", weight=2.0, tz_offset=-5, n_asns=8,
            ipv6_share=0.4, p_blocked=0.012,
            blocked_categories=(("Content Servers", 0.003), ("Business", 0.002)),
            deployments=(_d("enterprise_firewall", 1.0, asn_share=0.3),),
        ),
        CountryProfile(
            code="AU", name="Australia", weight=1.5, tz_offset=10, n_asns=8,
            ipv6_share=0.35, p_blocked=0.015,
            blocked_categories=(("Streaming", 0.03), ("Content Servers", 0.003)),
            deployments=(_d("enterprise_rst", 1.0, asn_share=0.3),),
        ),
        # Countries with essentially no tampering (baseline mass).
        CountryProfile(code="ET", name="Ethiopia", weight=0.2, tz_offset=3, n_asns=2, p_blocked=0.08,
                       blocked_categories=(("News", 0.3),),
                       deployments=(_d("syn_blackhole", 1.0),)),
        CountryProfile(code="ER", name="Eritrea", weight=0.02, tz_offset=3, n_asns=1, p_blocked=0.2,
                       blocked_categories=(("News", 0.5),),
                       deployments=(_d("syn_blackhole", 1.0),)),
        CountryProfile(code="PS", name="Palestine", weight=0.1, tz_offset=2, n_asns=2, p_blocked=0.1,
                       blocked_categories=(("News", 0.3),),
                       deployments=(_d("single_rst", 1.0),)),
        CountryProfile(code="RW", name="Rwanda", weight=0.05, tz_offset=2, n_asns=2, p_blocked=0.1,
                       blocked_categories=(("News", 0.3),),
                       deployments=(_d("psh_blackhole", 1.0),)),
        CountryProfile(code="DJ", name="Djibouti", weight=0.02, tz_offset=3, n_asns=1, p_blocked=0.2,
                       blocked_categories=(("News", 0.4),),
                       deployments=(_d("iran_drop", 1.0),)),
        CountryProfile(code="KE", name="Kenya", weight=0.4, tz_offset=3, n_asns=4, ipv6_share=0.35,
                       p_blocked=0.04,
                       blocked_categories=(("Adult Themes", 0.1),),
                       deployments=(_d("single_rst", 1.0, asn_share=0.5),)),
    ]
    return profiles


def profile_for(code: str, profiles: Optional[Sequence[CountryProfile]] = None) -> CountryProfile:
    """Look up a profile by country code."""
    for profile in profiles or default_profiles():
        if profile.code == code:
            return profile
    raise KeyError(f"no profile for country {code!r}")
