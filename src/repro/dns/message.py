"""DNS wire format (RFC 1035 subset).

Implements the message encoding a resolver and censor actually exchange:
the 12-byte header, question section, and answer records for A, AAAA and
CNAME types.  Decoding handles name-compression pointers (real responses
use them); encoding writes uncompressed names, which is always legal.
"""

from __future__ import annotations

import dataclasses
import enum
import ipaddress
import struct
from typing import List, Optional, Tuple

from repro.errors import PacketDecodeError

__all__ = [
    "QType",
    "RCode",
    "DnsHeader",
    "DnsQuestion",
    "DnsRecord",
    "DnsMessage",
    "encode_name",
    "decode_name",
]

_MAX_NAME_LENGTH = 255
_MAX_LABEL_LENGTH = 63
_POINTER_MASK = 0xC0


class QType(enum.IntEnum):
    """Query/record types this substrate understands."""

    A = 1
    CNAME = 5
    AAAA = 28


class RCode(enum.IntEnum):
    """Response codes (subset)."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    REFUSED = 5


def encode_name(name: str) -> bytes:
    """Encode a domain name as length-prefixed labels."""
    name = name.strip(".")
    if not name:
        return b"\x00"
    out = bytearray()
    for label in name.split("."):
        raw = label.encode("idna") if any(ord(c) > 127 for c in label) else label.encode("ascii")
        if not 0 < len(raw) <= _MAX_LABEL_LENGTH:
            raise ValueError(f"bad DNS label: {label!r}")
        out.append(len(raw))
        out.extend(raw)
    out.append(0)
    if len(out) > _MAX_NAME_LENGTH:
        raise ValueError(f"encoded name too long: {name!r}")
    return bytes(out)


def decode_name(data: bytes, offset: int) -> Tuple[str, int]:
    """Decode a (possibly compressed) name; returns (name, next offset).

    Follows compression pointers with a hop bound so malformed loops
    raise instead of spinning.
    """
    labels: List[str] = []
    jumps = 0
    next_offset: Optional[int] = None
    pos = offset
    while True:
        if pos >= len(data):
            raise PacketDecodeError("DNS name runs past end of message")
        length = data[pos]
        if length & _POINTER_MASK == _POINTER_MASK:
            if pos + 1 >= len(data):
                raise PacketDecodeError("truncated DNS compression pointer")
            target = ((length & 0x3F) << 8) | data[pos + 1]
            if next_offset is None:
                next_offset = pos + 2
            jumps += 1
            if jumps > 32:
                raise PacketDecodeError("DNS compression pointer loop")
            pos = target
            continue
        if length & _POINTER_MASK:
            raise PacketDecodeError(f"reserved DNS label type: {length:#x}")
        pos += 1
        if length == 0:
            break
        if pos + length > len(data):
            raise PacketDecodeError("DNS label runs past end of message")
        labels.append(data[pos : pos + length].decode("ascii", "replace"))
        pos += length
    return ".".join(labels), (next_offset if next_offset is not None else pos)


@dataclasses.dataclass(frozen=True)
class DnsHeader:
    """The fixed 12-byte header."""

    txid: int
    is_response: bool = False
    rcode: RCode = RCode.NOERROR
    recursion_desired: bool = True
    recursion_available: bool = False
    authoritative: bool = False
    qdcount: int = 0
    ancount: int = 0

    def encode(self) -> bytes:
        flags = 0
        if self.is_response:
            flags |= 0x8000
        if self.authoritative:
            flags |= 0x0400
        if self.recursion_desired:
            flags |= 0x0100
        if self.recursion_available:
            flags |= 0x0080
        flags |= int(self.rcode) & 0x0F
        return struct.pack("!HHHHHH", self.txid & 0xFFFF, flags, self.qdcount, self.ancount, 0, 0)

    @classmethod
    def decode(cls, data: bytes) -> "DnsHeader":
        if len(data) < 12:
            raise PacketDecodeError("truncated DNS header")
        txid, flags, qdcount, ancount, _ns, _ar = struct.unpack("!HHHHHH", data[:12])
        return cls(
            txid=txid,
            is_response=bool(flags & 0x8000),
            authoritative=bool(flags & 0x0400),
            recursion_desired=bool(flags & 0x0100),
            recursion_available=bool(flags & 0x0080),
            rcode=RCode(flags & 0x0F) if (flags & 0x0F) in RCode._value2member_map_ else RCode.SERVFAIL,
            qdcount=qdcount,
            ancount=ancount,
        )


@dataclasses.dataclass(frozen=True)
class DnsQuestion:
    """One question: name, type, class IN."""

    name: str
    qtype: QType = QType.A

    def encode(self) -> bytes:
        return encode_name(self.name) + struct.pack("!HH", int(self.qtype), 1)


@dataclasses.dataclass(frozen=True)
class DnsRecord:
    """One answer record (A / AAAA / CNAME)."""

    name: str
    rtype: QType
    ttl: int
    data: str  # address text, or target name for CNAME

    def encode(self) -> bytes:
        if self.rtype == QType.A:
            rdata = ipaddress.IPv4Address(self.data).packed
        elif self.rtype == QType.AAAA:
            rdata = ipaddress.IPv6Address(self.data).packed
        elif self.rtype == QType.CNAME:
            rdata = encode_name(self.data)
        else:  # pragma: no cover - constructor restricts types
            raise ValueError(f"unsupported record type {self.rtype}")
        return (
            encode_name(self.name)
            + struct.pack("!HHIH", int(self.rtype), 1, self.ttl & 0xFFFFFFFF, len(rdata))
            + rdata
        )


@dataclasses.dataclass
class DnsMessage:
    """A query or response: header + questions + answers."""

    header: DnsHeader
    questions: List[DnsQuestion] = dataclasses.field(default_factory=list)
    answers: List[DnsRecord] = dataclasses.field(default_factory=list)

    @classmethod
    def query(cls, name: str, qtype: QType = QType.A, txid: int = 0) -> "DnsMessage":
        return cls(
            header=DnsHeader(txid=txid, qdcount=1),
            questions=[DnsQuestion(name=name, qtype=qtype)],
        )

    def respond(
        self,
        answers: List[DnsRecord],
        rcode: RCode = RCode.NOERROR,
        authoritative: bool = True,
    ) -> "DnsMessage":
        """Build a response to this query."""
        return DnsMessage(
            header=DnsHeader(
                txid=self.header.txid,
                is_response=True,
                rcode=rcode,
                recursion_desired=self.header.recursion_desired,
                recursion_available=True,
                authoritative=authoritative,
                qdcount=len(self.questions),
                ancount=len(answers),
            ),
            questions=list(self.questions),
            answers=list(answers),
        )

    @property
    def question_name(self) -> Optional[str]:
        return self.questions[0].name if self.questions else None

    def addresses(self) -> List[str]:
        """All A/AAAA answer addresses."""
        return [r.data for r in self.answers if r.rtype in (QType.A, QType.AAAA)]

    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        header = dataclasses.replace(
            self.header, qdcount=len(self.questions), ancount=len(self.answers)
        )
        out = bytearray(header.encode())
        for q in self.questions:
            out.extend(q.encode())
        for a in self.answers:
            out.extend(a.encode())
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "DnsMessage":
        header = DnsHeader.decode(data)
        offset = 12
        questions: List[DnsQuestion] = []
        for _ in range(header.qdcount):
            name, offset = decode_name(data, offset)
            if offset + 4 > len(data):
                raise PacketDecodeError("truncated DNS question")
            qtype, qclass = struct.unpack("!HH", data[offset : offset + 4])
            offset += 4
            if qtype in QType._value2member_map_:
                questions.append(DnsQuestion(name=name, qtype=QType(qtype)))
        answers: List[DnsRecord] = []
        for _ in range(header.ancount):
            name, offset = decode_name(data, offset)
            if offset + 10 > len(data):
                raise PacketDecodeError("truncated DNS record header")
            rtype, rclass, ttl, rdlength = struct.unpack("!HHIH", data[offset : offset + 10])
            offset += 10
            if offset + rdlength > len(data):
                raise PacketDecodeError("truncated DNS rdata")
            rdata = data[offset : offset + rdlength]
            if rtype == QType.A and rdlength == 4:
                answers.append(DnsRecord(name, QType.A, ttl, str(ipaddress.IPv4Address(rdata))))
            elif rtype == QType.AAAA and rdlength == 16:
                answers.append(DnsRecord(name, QType.AAAA, ttl, str(ipaddress.IPv6Address(rdata))))
            elif rtype == QType.CNAME:
                target, _ = decode_name(data, offset)
                answers.append(DnsRecord(name, QType.CNAME, ttl, target))
            offset += rdlength
        return cls(header=header, questions=questions, answers=answers)
