"""DNS substrate: the connection stage the paper scopes out.

Tampering can happen at DNS resolution before a TCP connection ever
starts (paper §2.1 cites [42, 63]); the passive server-side methodology
cannot see it, because a poisoned client never reaches the CDN.  This
subpackage implements that stage so the blind spot can be measured:

* :mod:`repro.dns.message` -- RFC 1035 wire format (header, questions,
  A/AAAA/CNAME answers, name compression on decode).
* :mod:`repro.dns.resolver` -- a stub resolver, the CDN's authoritative
  answers, and policy-driven DNS censors (NXDOMAIN injection, forged
  addresses GFW-style, and silent drops).
* :mod:`repro.dns.pipeline` -- runs connection specs through a DNS
  deployment first, partitioning traffic into "reaches the CDN" vs
  "blocked before TCP" (what `benchmarks/bench_dns_blindspot.py`
  quantifies).
"""

from repro.dns.message import (
    DnsHeader,
    DnsMessage,
    DnsQuestion,
    DnsRecord,
    QType,
    RCode,
    decode_name,
    encode_name,
)
from repro.dns.pipeline import DnsFilterResult, filter_specs_through_dns
from repro.dns.resolver import (
    AuthoritativeServer,
    DnsCensor,
    DnsTamperMode,
    ResolutionOutcome,
    ResolutionResult,
    StubResolver,
)

__all__ = [
    "DnsHeader",
    "DnsQuestion",
    "DnsRecord",
    "DnsMessage",
    "QType",
    "RCode",
    "encode_name",
    "decode_name",
    "StubResolver",
    "AuthoritativeServer",
    "DnsCensor",
    "DnsTamperMode",
    "ResolutionOutcome",
    "ResolutionResult",
    "DnsFilterResult",
    "filter_specs_through_dns",
]
