"""Running connection specs through a DNS deployment first.

A censor that poisons resolution stops connections *before* TCP: those
clients never reach the CDN, so the passive pipeline never records them.
:func:`filter_specs_through_dns` partitions a workload accordingly,
letting benchmarks quantify how much censorship moves out of the passive
pipeline's sight when a country shifts from TCP tear-downs to DNS
poisoning (the blind spot the paper scopes out in §2.1).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.dns.message import QType
from repro.dns.resolver import (
    AuthoritativeServer,
    DnsCensor,
    ResolutionOutcome,
    ResolutionResult,
    StubResolver,
)
from repro.workloads.traffic import ConnectionSpec

__all__ = ["DnsFilterResult", "filter_specs_through_dns"]


@dataclasses.dataclass
class DnsFilterResult:
    """Partition of a workload by resolution outcome."""

    surviving: List[ConnectionSpec]
    dns_blocked: List[Tuple[ConnectionSpec, ResolutionResult]]

    @property
    def blocked_count(self) -> int:
        return len(self.dns_blocked)

    @property
    def blocked_share(self) -> float:
        total = len(self.surviving) + len(self.dns_blocked)
        return len(self.dns_blocked) / total if total else 0.0

    def blocked_domains(self) -> set:
        return {spec.domain for spec, _ in self.dns_blocked}


def filter_specs_through_dns(
    world,
    specs: Sequence[ConnectionSpec],
    censors_by_country: Mapping[str, Sequence[DnsCensor]],
    seed: int = 0,
) -> DnsFilterResult:
    """Resolve every spec's hostname through its country's DNS censors.

    Connections whose resolution is poisoned (timeout, NXDOMAIN, or a
    forged address that is not a CDN edge) are removed from the
    workload; the rest proceed to TCP untouched.  Resolution results are
    cached per (country, hostname), like real resolver caches.
    """
    authoritative = AuthoritativeServer.for_world(world)
    resolvers: Dict[str, StubResolver] = {}
    cache: Dict[Tuple[str, str, int], ResolutionResult] = {}

    surviving: List[ConnectionSpec] = []
    blocked: List[Tuple[ConnectionSpec, ResolutionResult]] = []
    for spec in specs:
        censors = censors_by_country.get(spec.country, ())
        if not censors:
            surviving.append(spec)
            continue
        resolver = resolvers.get(spec.country)
        if resolver is None:
            resolver = StubResolver(authoritative, censors=censors, seed=seed)
            resolvers[spec.country] = resolver
        qtype = QType.AAAA if spec.ip_version == 6 else QType.A
        key = (spec.country, spec.host, spec.ip_version)
        result = cache.get(key)
        if result is None:
            result = resolver.resolve(spec.host, qtype=qtype)
            cache[key] = result
        if result.outcome.reaches_cdn:
            surviving.append(spec)
        else:
            blocked.append((spec, result))
    return DnsFilterResult(surviving=surviving, dns_blocked=blocked)
