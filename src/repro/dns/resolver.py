"""Resolution path: stub resolver → censors → authoritative server.

Mirrors the TCP-layer architecture one level down: an authoritative
server answers with the CDN's anycast addresses (the same
domain → edge-IP mapping the TCP workload uses); zero or more
:class:`DnsCensor` devices sit on the query path and may inject
NXDOMAIN, forge an address (the GFW's classic move), or silently drop
the query; a :class:`StubResolver` drives the exchange and reports what
a client would observe.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, List, Optional, Sequence, Tuple

from repro._util import derive_rng
from repro.dns.message import DnsMessage, DnsRecord, QType, RCode
from repro.middlebox.policy import BlockPolicy, FlowContext

__all__ = [
    "ResolutionOutcome",
    "ResolutionResult",
    "AuthoritativeServer",
    "DnsTamperMode",
    "DnsCensor",
    "StubResolver",
]

#: Addresses GFW-style forgers hand out (observed-in-the-wild style).
_FORGED_POOL = ("203.98.7.65", "8.7.198.45", "159.106.121.75")


class ResolutionOutcome(enum.Enum):
    """What the stub resolver experienced."""

    OK = "ok"
    NXDOMAIN = "nxdomain"
    TIMEOUT = "timeout"
    FORGED = "forged"  # an answer arrived, but not the CDN's (detectable post-hoc)

    @property
    def reaches_cdn(self) -> bool:
        """True if the client ends up connecting to a real edge address."""
        return self is ResolutionOutcome.OK


@dataclasses.dataclass(frozen=True)
class ResolutionResult:
    """Outcome of one resolution."""

    domain: str
    outcome: ResolutionOutcome
    addresses: Tuple[str, ...] = ()
    injected: bool = False  # ground truth: a censor produced the response


class AuthoritativeServer:
    """The CDN's authoritative view: every hosted domain → its edge IPs."""

    def __init__(self, edge_ip_for: Callable[[str, int], str], hosted: Callable[[str], bool]) -> None:
        self._edge_ip_for = edge_ip_for
        self._hosted = hosted

    @classmethod
    def for_world(cls, world) -> "AuthoritativeServer":
        return cls(
            edge_ip_for=world.edge_ip_for,
            hosted=lambda name: world.universe.get(_registered(name)) is not None,
        )

    def respond(self, query: DnsMessage) -> DnsMessage:
        name = query.question_name or ""
        base = _registered(name)
        if not self._hosted(base):
            return query.respond([], rcode=RCode.NXDOMAIN)
        qtype = query.questions[0].qtype
        version = 6 if qtype == QType.AAAA else 4
        address = self._edge_ip_for(base, version)
        rtype = QType.AAAA if version == 6 else QType.A
        return query.respond([DnsRecord(name=name, rtype=rtype, ttl=300, data=address)])


def _registered(name: str) -> str:
    """Strip the synthetic-world www./cdn. prefixes back to the apex."""
    for prefix in ("www.", "cdn."):
        if name.startswith(prefix):
            return name[len(prefix):]
    return name


class DnsTamperMode(enum.Enum):
    """How a DNS censor answers a blocked query."""

    NXDOMAIN = "nxdomain"  # inject a name-error
    FORGE = "forge"  # inject a wrong address (GFW style)
    DROP = "drop"  # swallow the query: the client times out


class DnsCensor:
    """A policy-driven on-path DNS tamperer.

    ``observe_query`` returns the injected response (racing ahead of the
    authoritative answer, as real injectors do) or None to let the query
    through.
    """

    def __init__(
        self,
        policy: BlockPolicy,
        mode: DnsTamperMode = DnsTamperMode.FORGE,
        name: str = "dns-censor",
        seed: int = 0,
    ) -> None:
        self.policy = policy
        self.mode = mode
        self.name = name
        self._rng = derive_rng(seed, f"dns-censor:{name}")
        self.triggers = 0

    def matches(self, domain: str) -> bool:
        ctx = FlowContext(server_ip="0.0.0.0", server_port=53, domain=domain)
        return self.policy.matches(ctx)

    def observe_query(self, query: DnsMessage) -> Optional[DnsMessage]:
        name = query.question_name
        if not name or not self.matches(name):
            return None
        self.triggers += 1
        if self.mode == DnsTamperMode.DROP:
            return DnsMessage(header=query.header)  # sentinel: swallowed (see resolver)
        if self.mode == DnsTamperMode.NXDOMAIN:
            return query.respond([], rcode=RCode.NXDOMAIN, authoritative=False)
        forged = self._rng.choice(_FORGED_POOL)
        qtype = query.questions[0].qtype if query.questions else QType.A
        rtype = QType.AAAA if qtype == QType.AAAA else QType.A
        data = forged if rtype == QType.A else "2001:db8:dead::1"
        return query.respond(
            [DnsRecord(name=name, rtype=rtype, ttl=300, data=data)],
            authoritative=False,
        )


class StubResolver:
    """A client-side resolver running queries through a censor chain."""

    def __init__(
        self,
        authoritative: AuthoritativeServer,
        censors: Sequence[DnsCensor] = (),
        seed: int = 0,
    ) -> None:
        self.authoritative = authoritative
        self.censors = list(censors)
        self._rng = derive_rng(seed, "stub-resolver")
        self._txid = self._rng.randrange(0, 0x10000)

    def resolve(self, domain: str, qtype: QType = QType.A) -> ResolutionResult:
        """Resolve ``domain``, subject to the censor chain."""
        self._txid = (self._txid + 1) & 0xFFFF
        # Round-trip through the real wire format: what the censor and
        # server see is bytes, exactly as deployed.
        query = DnsMessage.decode(DnsMessage.query(domain, qtype=qtype, txid=self._txid).encode())

        for censor in self.censors:
            injected = censor.observe_query(query)
            if injected is None:
                continue
            if censor.mode == DnsTamperMode.DROP:
                return ResolutionResult(domain=domain, outcome=ResolutionOutcome.TIMEOUT, injected=True)
            response = DnsMessage.decode(injected.encode())
            if response.header.rcode == RCode.NXDOMAIN:
                return ResolutionResult(domain=domain, outcome=ResolutionOutcome.NXDOMAIN, injected=True)
            return ResolutionResult(
                domain=domain,
                outcome=ResolutionOutcome.FORGED,
                addresses=tuple(response.addresses()),
                injected=True,
            )

        response = DnsMessage.decode(self.authoritative.respond(query).encode())
        if response.header.rcode == RCode.NXDOMAIN:
            return ResolutionResult(domain=domain, outcome=ResolutionOutcome.NXDOMAIN)
        return ResolutionResult(
            domain=domain,
            outcome=ResolutionOutcome.OK,
            addresses=tuple(response.addresses()),
        )
