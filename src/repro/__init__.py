"""repro -- passive detection of connection tampering.

A from-scratch reproduction of *"Global, Passive Detection of Connection
Tampering"* (ACM SIGCOMM 2023): the 19 tampering signatures, the
server-side collection methodology, the IP-ID/TTL injection evidence,
and the full global analysis -- driven by a synthetic world of countries,
ASNs, client populations and censor middleboxes, because the original
CDN dataset is proprietary.

Quickstart::

    from repro import two_week_study

    study = two_week_study(n_connections=2000, seed=7)
    data = study.analyze()
    for country, rate in sorted(data.country_tampering_rate().items()):
        print(f"{country}: {rate:.1f}% of connections tampered")

Layers (see DESIGN.md for the full inventory):

* :mod:`repro.netstack` -- packets, TCP state machines, TLS/HTTP, pcap.
* :mod:`repro.middlebox` -- DPI, policies, injectors, vendor presets.
* :mod:`repro.network` -- the path simulator and client personalities.
* :mod:`repro.cdn` -- geolocation, edge servers, sampling, collection.
* :mod:`repro.core` -- the paper's contribution: signatures, classifier,
  evidence, aggregation, test-list analysis.
* :mod:`repro.workloads` -- the synthetic world and study scenarios.
* :mod:`repro.stream` -- online ingestion: sharded classification,
  incremental rollups, checkpoints, live anomaly detection.
* :mod:`repro.store` -- durable partitioned rollup storage: sealed
  segments, WAL, compaction, and a batch-parity query engine.
* :mod:`repro.obs` -- zero-dependency observability: metrics registry,
  trace spans, Prometheus exposition, stage-latency reports.
"""

from repro.cdn.collector import ConnectionSample, read_samples_jsonl, write_samples_jsonl
from repro.core.aggregate import AnalysisDataset, AnalyzedConnection
from repro.core.classifier import ClassificationResult, ClassifierConfig, TamperingClassifier
from repro.core.evidence import evidence_for_sample
from repro.core.model import SIGNATURES, SignatureId, Stage
from repro.core.signatures import match_signature
from repro.core.testlists import TestList, coverage_table, registrable_domain
from repro.stream import (
    AnomalyConfig,
    AnomalyEvent,
    EwmaDetector,
    IterableSource,
    JsonlDirectorySource,
    JsonlSource,
    ShardConfig,
    ShardedClassifierPool,
    SimulatorSource,
    StreamEngine,
    StreamRecord,
    StreamReport,
    StreamRollup,
)
from repro.store import RollupStore, StoreConfig, StoreQuery
from repro.workloads.profiles import CountryProfile, DeploymentSpec, default_profiles
from repro.workloads.scenarios import StudyRun, iran_protest_study, two_week_study
from repro.workloads.testlist_gen import build_test_lists
from repro.workloads.traffic import ConnectionSpec, TrafficGenerator
from repro.workloads.world import World

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "SignatureId",
    "Stage",
    "SIGNATURES",
    "match_signature",
    "TamperingClassifier",
    "ClassifierConfig",
    "ClassificationResult",
    "AnalysisDataset",
    "AnalyzedConnection",
    "evidence_for_sample",
    "TestList",
    "coverage_table",
    "registrable_domain",
    # data
    "ConnectionSample",
    "read_samples_jsonl",
    "write_samples_jsonl",
    # world
    "World",
    "CountryProfile",
    "DeploymentSpec",
    "default_profiles",
    "TrafficGenerator",
    "ConnectionSpec",
    "build_test_lists",
    "StudyRun",
    "two_week_study",
    "iran_protest_study",
    # stream
    "StreamEngine",
    "StreamReport",
    "StreamRollup",
    "StreamRecord",
    "ShardConfig",
    "ShardedClassifierPool",
    "IterableSource",
    "JsonlSource",
    "JsonlDirectorySource",
    "SimulatorSource",
    "AnomalyConfig",
    "AnomalyEvent",
    "EwmaDetector",
    # store
    "RollupStore",
    "StoreConfig",
    "StoreQuery",
]
