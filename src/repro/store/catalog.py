"""First-seen key ordering for exact batch parity.

Integer counters merge associatively in any order, but the rollup's
*query results* do not: :meth:`StreamRollup.country_tampering_rate`
accumulates per-signature percentages in the first-seen order of each
country's ``by_signature`` dict, ``timeseries`` emits countries in
first-seen order, and ``stage_statistics`` returns a ``Counter`` whose
insertion order is the global first-match order of signatures.  Those
orders are a property of the *record stream*, not of any one partition,
so segments cannot carry them.

:class:`KeyCatalog` is the store's answer: a tiny registry (bounded by
key cardinality -- countries × signatures -- never by history) recording

* the first-seen order of countries,
* per country, the first-seen order of signature keys (including
  ``NOT_TAMPERING``, whose position matters for float accumulation), and
* the global first-match order of tampering signatures (the
  ``signature_counts`` Counter order).

The catalog is observed on every ingested record (re-observing a known
key is a no-op, which makes WAL replay and resume re-delivery exactly
idempotent), persisted in the manifest at every swap, and carried in
checkpoints between swaps.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.model import SignatureId

__all__ = ["KeyCatalog"]


class KeyCatalog:
    """First-seen orderings of countries and signatures."""

    def __init__(self) -> None:
        #: countries in first-seen stream order
        self.countries: List[str] = []
        #: country -> signature keys (incl. NOT_TAMPERING) in first-seen order
        self.country_sigs: Dict[str, List[SignatureId]] = {}
        #: tampering signatures in global first-match order
        #: (the insertion order of the rollup's ``signature_counts``)
        self.global_sigs: List[SignatureId] = []
        self._country_set: Set[str] = set()
        self._country_sig_sets: Dict[str, Set[SignatureId]] = {}
        self._global_sig_set: Set[SignatureId] = set()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KeyCatalog):
            return NotImplemented
        return (
            self.countries == other.countries
            and self.country_sigs == other.country_sigs
            and self.global_sigs == other.global_sigs
        )

    def __len__(self) -> int:
        return len(self.countries)

    # ------------------------------------------------------------------
    def observe(
        self,
        country: str,
        sig_key: SignatureId,
        counts_globally: bool,
    ) -> None:
        """Register one record's keys; known keys are no-ops.

        ``sig_key`` is the rollup's ``by_signature`` key (the signature
        for tampering records, ``NOT_TAMPERING`` otherwise);
        ``counts_globally`` is True exactly when the rollup would
        increment ``signature_counts`` (possibly-tampered AND matched).
        """
        if country not in self._country_set:
            self._country_set.add(country)
            self.countries.append(country)
            self.country_sigs[country] = []
            self._country_sig_sets[country] = set()
        sig_set = self._country_sig_sets[country]
        if sig_key not in sig_set:
            sig_set.add(sig_key)
            self.country_sigs[country].append(sig_key)
        if counts_globally and sig_key not in self._global_sig_set:
            self._global_sig_set.add(sig_key)
            self.global_sigs.append(sig_key)

    def observe_record(self, record) -> None:
        """Register a :class:`~repro.stream.shard.StreamRecord`."""
        sig_key = (
            record.signature
            if record.signature.is_tampering
            else SignatureId.NOT_TAMPERING
        )
        self.observe(
            record.country,
            sig_key,
            record.possibly_tampered and record.signature.is_tampering,
        )

    # ------------------------------------------------------------------
    def ordered_countries(self, present: Optional[Set[str]] = None) -> List[str]:
        """First-seen country order, optionally restricted to ``present``."""
        if present is None:
            return list(self.countries)
        return [c for c in self.countries if c in present]

    def ordered_sigs(
        self, country: str, present: Optional[Set[SignatureId]] = None
    ) -> List[SignatureId]:
        """First-seen signature order for one country."""
        sigs = self.country_sigs.get(country, [])
        if present is None:
            return list(sigs)
        return [s for s in sigs if s in present]

    def ordered_global_sigs(
        self, present: Optional[Set[SignatureId]] = None
    ) -> List[SignatureId]:
        """Global first-match signature order (Counter insertion order)."""
        if present is None:
            return list(self.global_sigs)
        return [s for s in self.global_sigs if s in present]

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "countries": list(self.countries),
            "country_sigs": [
                [country, [sig.value for sig in sigs]]
                for country, sigs in self.country_sigs.items()
            ],
            "global_sigs": [sig.value for sig in self.global_sigs],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "KeyCatalog":
        catalog = cls()
        catalog.countries = list(data["countries"])
        catalog._country_set = set(catalog.countries)
        catalog.country_sigs = {
            country: [SignatureId(value) for value in values]
            for country, values in data["country_sigs"]
        }
        catalog._country_sig_sets = {
            country: set(sigs) for country, sigs in catalog.country_sigs.items()
        }
        catalog.global_sigs = [SignatureId(value) for value in data["global_sigs"]]
        catalog._global_sig_set = set(catalog.global_sigs)
        return catalog
