"""repro.store -- partitioned on-disk rollup storage.

The stream engine's durable tier: closed hour-buckets are sealed out of
memory into immutable, time-partitioned segment files; the open buckets
ride a write-ahead log; a background compactor merges small segments
under an atomically-swapped manifest; and a query engine answers the
batch-parity question families with time-range and country pushdown --
byte-for-byte equal to an in-memory
:class:`~repro.stream.rollup.StreamRollup` over the same records.

See ``docs/data-formats.md`` for the on-disk formats and
``docs/architecture.md`` for the dataflow.
"""

from repro.store.catalog import KeyCatalog
from repro.store.compaction import (
    CHAOS_POINTS,
    CompactionChaos,
    CompactionConfig,
    Compactor,
)
from repro.store.manifest import MANIFEST_NAME, Manifest
from repro.store.query import QUERY_FAMILIES, QueryResult, StoreQuery
from repro.store.segment import (
    BucketSlice,
    Segment,
    SegmentMeta,
    load_segment,
    segment_file_name,
    write_segment,
)
from repro.store.store import RollupStore, StoreConfig
from repro.store.wal import WalEntry, WriteAheadLog

__all__ = [
    "KeyCatalog",
    "CHAOS_POINTS",
    "CompactionChaos",
    "CompactionConfig",
    "Compactor",
    "MANIFEST_NAME",
    "Manifest",
    "QUERY_FAMILIES",
    "QueryResult",
    "StoreQuery",
    "BucketSlice",
    "Segment",
    "SegmentMeta",
    "load_segment",
    "segment_file_name",
    "write_segment",
    "RollupStore",
    "StoreConfig",
    "WalEntry",
    "WriteAheadLog",
]
