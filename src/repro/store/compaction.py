"""Background compaction: merge small segments into larger partitions.

Sealing produces one level-0 segment per hour bucket, so a long-running
stream accumulates hundreds of small files and every wide query pays a
per-file open/parse cost.  The compactor merges them, size-tiered:
whenever a level holds ``trigger`` or more segments, the ``fanout``
oldest (by bucket range) are merged -- rows re-sorted by (bucket,
country), the unique-bucket invariant re-checked -- into one segment at
the next level, up to ``max_level``.

The merge is crash-safe by construction (see
:mod:`repro.store.manifest`): the merged file is written first, the
manifest swap is the commit point, and only then are the inputs
unlinked.  :class:`CompactionChaos` can SIGKILL the process at either
window -- after the merged segment is written but before the swap, or
after the swap but before the unlinks -- which is exactly what the
``store-compaction`` fire drill does to prove neither window can lose
or double-count a bucket.
"""

from __future__ import annotations

import dataclasses
import os
import signal
from typing import Dict, List, Optional

from repro.errors import StoreError
from repro.obs import NULL_OBS
from repro.store.manifest import Manifest
from repro.store.segment import BucketSlice, SegmentMeta, load_segment, write_segment

__all__ = ["CompactionConfig", "CompactionChaos", "Compactor"]

#: The two crash windows a chaotic compaction can die in.
CHAOS_POINTS = ("segment-written", "manifest-swapped")


@dataclasses.dataclass(frozen=True)
class CompactionConfig:
    """When and how aggressively to merge."""

    trigger: int = 8  # segments at one level before a merge fires
    fanout: int = 8  # segments merged per run
    max_level: int = 2  # merged segments never exceed this level

    def __post_init__(self) -> None:
        if self.trigger < 2:
            raise StoreError("compaction trigger must be >= 2")
        if self.fanout < 2:
            raise StoreError("compaction fanout must be >= 2")
        if self.max_level < 1:
            raise StoreError("compaction max_level must be >= 1")


@dataclasses.dataclass
class CompactionChaos:
    """Deterministic kill switch for the fire drill.

    SIGKILLs the calling process during compaction run number
    ``on_run`` (1-based), at ``point``: ``"segment-written"`` (merged
    file exists, manifest not yet swapped -- the orphan window) or
    ``"manifest-swapped"`` (swap committed, old segments not yet
    unlinked -- the stale-file window).
    """

    on_run: int = 1
    point: str = "manifest-swapped"

    def __post_init__(self) -> None:
        if self.point not in CHAOS_POINTS:
            raise StoreError(
                f"unknown chaos point {self.point!r}; expected one of {CHAOS_POINTS}"
            )
        if self.on_run < 1:
            raise StoreError("chaos on_run is 1-based")

    def maybe_kill(self, run: int, point: str) -> None:
        if run == self.on_run and point == self.point:
            os.kill(os.getpid(), signal.SIGKILL)


class Compactor:
    """Incremental size-tiered merging over a store's manifest."""

    def __init__(
        self,
        segments_dir: str,
        config: Optional[CompactionConfig] = None,
        chaos: Optional[CompactionChaos] = None,
        obs=NULL_OBS,
    ) -> None:
        self.segments_dir = segments_dir
        self.config = config or CompactionConfig()
        self.chaos = chaos
        self.obs = obs if obs is not None else NULL_OBS
        self._t_merge = self.obs.timer("compaction.merge")
        self.runs = 0
        self.segments_merged = 0
        self.bytes_written = 0

    # ------------------------------------------------------------------
    def due(self, manifest: Manifest) -> Optional[int]:
        """The lowest level with enough segments to merge, if any."""
        for level, metas in sorted(manifest.levels().items()):
            if level >= self.config.max_level:
                continue
            if len(metas) >= self.config.trigger:
                return level
        return None

    def run_once(self, manifest: Manifest) -> bool:
        """Merge one batch if due; returns True when a merge happened.

        Mutates ``manifest`` and swaps it to disk; the caller owns the
        manifest object and must keep using the mutated instance.
        """
        level = self.due(manifest)
        if level is None:
            return False
        with self._t_merge:
            return self._merge_level(manifest, level)

    def _merge_level(self, manifest: Manifest, level: int) -> bool:
        victims = sorted(
            manifest.levels()[level],
            key=lambda meta: (meta.min_bucket, meta.segment_id),
        )[: self.config.fanout]
        self.runs += 1
        run = self.runs

        merged: Dict[float, BucketSlice] = {}
        for meta in victims:
            segment = load_segment(self.segments_dir, meta)
            for bucket, slice_ in segment.slices.items():
                if bucket in merged:
                    # The manifest's unique-owner invariant makes this
                    # unreachable; merging anyway would double-count.
                    raise StoreError(
                        f"compaction found bucket {bucket} in two segments"
                    )
                merged[bucket] = slice_

        new_id = manifest.allocate_segment_id()
        new_meta = write_segment(
            self.segments_dir, new_id, level + 1, list(merged.values())
        )
        self.bytes_written += new_meta.size_bytes
        if self.chaos is not None:
            self.chaos.maybe_kill(run, "segment-written")

        victim_ids = {meta.segment_id for meta in victims}
        manifest.segments = [
            meta for meta in manifest.segments if meta.segment_id not in victim_ids
        ]
        manifest.segments.append(new_meta)
        manifest.save(os.path.dirname(self.segments_dir))
        if self.chaos is not None:
            self.chaos.maybe_kill(run, "manifest-swapped")

        for meta in victims:
            try:
                os.unlink(os.path.join(self.segments_dir, meta.name))
            except FileNotFoundError:
                pass
        self.segments_merged += len(victims)
        return True

    def run(self, manifest: Manifest, max_runs: int = 16) -> int:
        """Merge until nothing is due (bounded); returns runs performed."""
        performed = 0
        while performed < max_runs and self.run_once(manifest):
            performed += 1
        return performed
