"""Bucket slices and immutable segment files.

A :class:`BucketSlice` accumulates every rollup counter family for one
open hour-bucket -- it is the mutable, in-memory half of the store.
When the engine's watermark passes a bucket, the slice is *sealed*: its
counters are written to an immutable **segment file** and the slice is
dropped from memory (and from the WAL).

A segment file holds one or more complete buckets (level-0 segments
hold exactly one; compaction merges them into multi-bucket level-1+
partitions), partitioned by time range.  Columns are exactly the
:class:`~repro.stream.rollup.StreamRollup` counter families, keyed per
bucket so any set of segments can be combined or range-filtered without
touching records:

``totals``, ``matches`` (per country), ``by_signature`` (per country ×
signature key), ``signature_cells`` (per country × tampering
signature), ``stage_counts`` / ``stage_matched`` (per stage),
``signature_counts`` (per tampering signature), plus ``n`` / ``pt`` /
``min_ts`` / ``max_ts`` scalars.

Files are written with :func:`repro._util.atomic_write_json` (fsync'd
temp + ``os.replace`` + directory fsync), so a crash never leaves a
torn segment -- only a complete file or no file, and un-manifested
leftovers are swept on open.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, List, Optional, Tuple

from repro._util import atomic_write_json
from repro.core.model import SignatureId, Stage
from repro.errors import StoreError

__all__ = [
    "SEGMENT_VERSION",
    "BucketSlice",
    "SegmentMeta",
    "Segment",
    "segment_file_name",
    "write_segment",
    "load_segment",
]

SEGMENT_VERSION = 1


class BucketSlice:
    """Every rollup counter family, restricted to one time bucket."""

    __slots__ = (
        "bucket",
        "n_records",
        "possibly_tampered",
        "totals",
        "matches",
        "by_signature",
        "signature_cells",
        "stage_counts",
        "stage_matched",
        "signature_counts",
        "min_ts",
        "max_ts",
    )

    def __init__(self, bucket: float) -> None:
        self.bucket = bucket
        self.n_records = 0
        self.possibly_tampered = 0
        #: country -> connections in this bucket
        self.totals: Dict[str, int] = {}
        #: country -> tampering matches in this bucket
        self.matches: Dict[str, int] = {}
        #: country -> {sig-or-NOT_TAMPERING -> count}
        self.by_signature: Dict[str, Dict[SignatureId, int]] = {}
        #: (country, tampering signature) -> count
        self.signature_cells: Dict[Tuple[str, SignatureId], int] = {}
        self.stage_counts: Dict[str, int] = {}
        self.stage_matched: Dict[str, int] = {}
        self.signature_counts: Dict[SignatureId, int] = {}
        self.min_ts: Optional[float] = None
        self.max_ts: Optional[float] = None

    # ------------------------------------------------------------------
    def add(
        self,
        country: str,
        ts: float,
        signature: SignatureId,
        stage: Stage,
        possibly_tampered: bool,
    ) -> None:
        """Fold one record; mirrors :meth:`StreamRollup.add` for one bucket."""
        self.n_records += 1
        self.totals[country] = self.totals.get(country, 0) + 1

        tampering = signature.is_tampering
        sig_key = signature if tampering else SignatureId.NOT_TAMPERING
        sigs = self.by_signature.setdefault(country, {})
        sigs[sig_key] = sigs.get(sig_key, 0) + 1

        if tampering:
            self.matches[country] = self.matches.get(country, 0) + 1
            cell = (country, signature)
            self.signature_cells[cell] = self.signature_cells.get(cell, 0) + 1

        if possibly_tampered:
            self.possibly_tampered += 1
            stage_key = stage.value if stage != Stage.NONE else "other"
            self.stage_counts[stage_key] = self.stage_counts.get(stage_key, 0) + 1
            if tampering:
                self.stage_matched[stage_key] = self.stage_matched.get(stage_key, 0) + 1
                self.signature_counts[signature] = (
                    self.signature_counts.get(signature, 0) + 1
                )

        if self.min_ts is None or ts < self.min_ts:
            self.min_ts = ts
        if self.max_ts is None or ts > self.max_ts:
            self.max_ts = ts

    def merge(self, other: "BucketSlice") -> None:
        """Sum another complete slice of the *same* bucket into this one.

        Only compaction calls this, and only defensively: the manifest
        invariant is that every bucket lives in exactly one segment, so
        two slices for the same bucket indicate corruption upstream.
        """
        if other.bucket != self.bucket:
            raise StoreError(
                f"cannot merge slice of bucket {other.bucket} into {self.bucket}"
            )
        self.n_records += other.n_records
        self.possibly_tampered += other.possibly_tampered
        for country, n in other.totals.items():
            self.totals[country] = self.totals.get(country, 0) + n
        for country, n in other.matches.items():
            self.matches[country] = self.matches.get(country, 0) + n
        for country, sigs in other.by_signature.items():
            mine = self.by_signature.setdefault(country, {})
            for sig, n in sigs.items():
                mine[sig] = mine.get(sig, 0) + n
        for cell, n in other.signature_cells.items():
            self.signature_cells[cell] = self.signature_cells.get(cell, 0) + n
        for key, n in other.stage_counts.items():
            self.stage_counts[key] = self.stage_counts.get(key, 0) + n
        for key, n in other.stage_matched.items():
            self.stage_matched[key] = self.stage_matched.get(key, 0) + n
        for sig, n in other.signature_counts.items():
            self.signature_counts[sig] = self.signature_counts.get(sig, 0) + n
        for ts in (other.min_ts, other.max_ts):
            if ts is None:
                continue
            if self.min_ts is None or ts < self.min_ts:
                self.min_ts = ts
            if self.max_ts is None or ts > self.max_ts:
                self.max_ts = ts

    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-safe column payload (sorted rows: segments are canonical)."""
        return {
            "n": self.n_records,
            "pt": self.possibly_tampered,
            "min_ts": self.min_ts,
            "max_ts": self.max_ts,
            "totals": sorted([c, n] for c, n in self.totals.items()),
            "matches": sorted([c, n] for c, n in self.matches.items()),
            "by_signature": sorted(
                [c, sorted([sig.value, n] for sig, n in sigs.items())]
                for c, sigs in self.by_signature.items()
            ),
            "signature_cells": sorted(
                [c, sig.value, n] for (c, sig), n in self.signature_cells.items()
            ),
            "stage_counts": dict(sorted(self.stage_counts.items())),
            "stage_matched": dict(sorted(self.stage_matched.items())),
            "signature_counts": sorted(
                [sig.value, n] for sig, n in self.signature_counts.items()
            ),
        }

    @classmethod
    def from_payload(cls, bucket: float, payload: dict) -> "BucketSlice":
        slice_ = cls(bucket)
        slice_.n_records = payload["n"]
        slice_.possibly_tampered = payload["pt"]
        slice_.min_ts = payload["min_ts"]
        slice_.max_ts = payload["max_ts"]
        slice_.totals = {c: n for c, n in payload["totals"]}
        slice_.matches = {c: n for c, n in payload["matches"]}
        slice_.by_signature = {
            c: {SignatureId(value): n for value, n in sigs}
            for c, sigs in payload["by_signature"]
        }
        slice_.signature_cells = {
            (c, SignatureId(value)): n for c, value, n in payload["signature_cells"]
        }
        slice_.stage_counts = dict(payload["stage_counts"])
        slice_.stage_matched = dict(payload["stage_matched"])
        slice_.signature_counts = {
            SignatureId(value): n for value, n in payload["signature_counts"]
        }
        return slice_


@dataclasses.dataclass(frozen=True)
class SegmentMeta:
    """What the manifest records about one live segment file."""

    segment_id: int
    name: str  # file name under <store>/segments/
    level: int
    min_bucket: float
    max_bucket: float
    buckets: Tuple[float, ...]  # sorted bucket starts contained
    n_records: int
    countries: Tuple[str, ...]  # sorted; enables country pushdown
    size_bytes: int

    def overlaps(self, start: Optional[float], end: Optional[float]) -> bool:
        """Bucket-range pushdown: does any contained bucket start in
        ``[start, end)``?"""
        if start is not None and self.max_bucket < start:
            return False
        if end is not None and self.min_bucket >= end:
            return False
        return True

    def to_dict(self) -> dict:
        return {
            "id": self.segment_id,
            "name": self.name,
            "level": self.level,
            "min_bucket": self.min_bucket,
            "max_bucket": self.max_bucket,
            "buckets": list(self.buckets),
            "n_records": self.n_records,
            "countries": list(self.countries),
            "size_bytes": self.size_bytes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SegmentMeta":
        return cls(
            segment_id=data["id"],
            name=data["name"],
            level=data["level"],
            min_bucket=data["min_bucket"],
            max_bucket=data["max_bucket"],
            buckets=tuple(data["buckets"]),
            n_records=data["n_records"],
            countries=tuple(data["countries"]),
            size_bytes=data["size_bytes"],
        )


@dataclasses.dataclass
class Segment:
    """A loaded segment: metadata plus per-bucket slices."""

    meta: SegmentMeta
    slices: Dict[float, BucketSlice]


def segment_file_name(segment_id: int, level: int) -> str:
    return f"seg-{level}-{segment_id:08d}.json"


def write_segment(
    directory: str,
    segment_id: int,
    level: int,
    slices: List[BucketSlice],
) -> SegmentMeta:
    """Durably write one immutable segment file; returns its metadata."""
    if not slices:
        raise StoreError("refusing to write an empty segment")
    slices = sorted(slices, key=lambda s: s.bucket)
    buckets = tuple(s.bucket for s in slices)
    if len(set(buckets)) != len(buckets):
        raise StoreError(f"duplicate buckets in segment: {buckets}")
    name = segment_file_name(segment_id, level)
    payload = {
        "version": SEGMENT_VERSION,
        "id": segment_id,
        "level": level,
        "buckets": [[s.bucket, s.to_payload()] for s in slices],
    }
    size = atomic_write_json(os.path.join(directory, name), payload)
    countries = sorted({c for s in slices for c in s.totals})
    return SegmentMeta(
        segment_id=segment_id,
        name=name,
        level=level,
        min_bucket=buckets[0],
        max_bucket=buckets[-1],
        buckets=buckets,
        n_records=sum(s.n_records for s in slices),
        countries=tuple(countries),
        size_bytes=size,
    )


def load_segment(directory: str, meta: SegmentMeta) -> Segment:
    """Load a manifested segment file, validating it against its meta."""
    path = os.path.join(directory, meta.name)
    try:
        with open(path, "r") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise StoreError(f"unreadable segment {path!r}: {exc}") from exc
    if payload.get("version") != SEGMENT_VERSION:
        raise StoreError(
            f"segment {path!r} has version {payload.get('version')!r}, "
            f"expected {SEGMENT_VERSION}"
        )
    if payload.get("id") != meta.segment_id:
        raise StoreError(
            f"segment {path!r} holds id {payload.get('id')!r}, "
            f"manifest expected {meta.segment_id}"
        )
    slices = {
        bucket: BucketSlice.from_payload(bucket, slice_payload)
        for bucket, slice_payload in payload["buckets"]
    }
    if tuple(sorted(slices)) != meta.buckets:
        raise StoreError(
            f"segment {path!r} buckets {sorted(slices)} do not match "
            f"manifest {list(meta.buckets)}"
        )
    return Segment(meta=meta, slices=slices)
