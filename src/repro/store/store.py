"""RollupStore: the partitioned on-disk rollup store.

Ties the pieces together under one directory::

    <store>/
      MANIFEST.json     atomically-swapped source of truth
      segments/         immutable time-partitioned segment files
      wal/              per-open-bucket write-ahead logs

Ingest folds each record into the in-memory open
:class:`~repro.store.segment.BucketSlice` for its hour bucket and
appends a WAL entry.  When the engine's watermark passes a bucket,
:meth:`RollupStore.seal_through` freezes it into a level-0 segment
(write file → swap manifest → unlink WAL log) and drops it from memory;
:meth:`RollupStore.maybe_compact` merges small segments in the
background.  At every moment the durable state is *manifest + WAL*, and
the recovery in :meth:`RollupStore.__init__` reduces any crash --
including mid-seal and mid-compaction -- to exactly that state: orphan
segment files are swept, stale files and logs unlinked, the WAL
replayed.

Because history lives on disk, checkpoints shrink to O(open buckets):
:meth:`checkpoint_state` carries only the record count, the open
slices, the catalog, and the manifest generation -- never sealed
counters.  :meth:`restore` re-synchronises a checkpoint against the
(possibly newer) on-disk manifest, truncating the WAL to the
checkpoint's count so source re-delivery stays exactly idempotent.
"""

from __future__ import annotations

import dataclasses
import math
import os
import time
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.model import SignatureId
from repro.errors import CheckpointError, StoreError
from repro.obs import NULL_OBS
from repro.store.compaction import CompactionChaos, CompactionConfig, Compactor
from repro.store.manifest import MANIFEST_NAME, Manifest
from repro.store.query import QueryResult, StoreQuery, execute
from repro.store.segment import (
    BucketSlice,
    Segment,
    SegmentMeta,
    load_segment,
    write_segment,
)
from repro.store.wal import WalEntry, WriteAheadLog
from repro.stream.rollup import DEFAULT_BUCKET_SECONDS, StreamRollup
from repro.stream.shard import StreamRecord

__all__ = ["StoreConfig", "RollupStore"]

SEGMENTS_DIR = "segments"
WAL_DIR = "wal"
_SEGMENT_CACHE_SIZE = 32


@dataclasses.dataclass(frozen=True)
class StoreConfig:
    """Tunables; the defaults suit the stream engine's cadence."""

    wal_sync_records: int = 64
    compaction: CompactionConfig = dataclasses.field(default_factory=CompactionConfig)


class RollupStore:
    """Partitioned rollup storage with WAL, compaction, and queries."""

    def __init__(
        self,
        directory: str,
        bucket_seconds: float = DEFAULT_BUCKET_SECONDS,
        config: Optional[StoreConfig] = None,
        chaos: Optional[CompactionChaos] = None,
        obs=None,
    ) -> None:
        if bucket_seconds <= 0:
            raise StoreError("bucket_seconds must be positive")
        self.directory = directory
        self.bucket_seconds = bucket_seconds
        self.config = config or StoreConfig()
        self.obs = obs if obs is not None else NULL_OBS
        self.read_only = False
        self._manifest_hint: Optional[Tuple[int, int]] = None
        self._t_seal = self.obs.timer("segment.seal")
        self.segments_dir = os.path.join(directory, SEGMENTS_DIR)
        os.makedirs(self.segments_dir, exist_ok=True)

        manifest = Manifest.load(directory)
        if manifest is None:
            manifest = Manifest(bucket_seconds)
        elif manifest.bucket_seconds != bucket_seconds:
            raise StoreError(
                f"store at {directory!r} has bucket_seconds="
                f"{manifest.bucket_seconds}, asked for {bucket_seconds}"
            )
        self.manifest = manifest
        self.catalog = manifest.catalog
        self.compactor = Compactor(
            self.segments_dir,
            config=self.config.compaction,
            chaos=chaos,
            obs=self.obs,
        )
        self.wal = WriteAheadLog(
            os.path.join(directory, WAL_DIR),
            sync_every=self.config.wal_sync_records,
            obs=self.obs,
        )

        #: bucket start -> open (unsealed) slice
        self._open: Dict[float, BucketSlice] = {}
        self._segment_cache: "OrderedDict[str, Segment]" = OrderedDict()
        self.ordinal = 0  # engine fold count of the last applied record
        self.sealed_skips = 0  # re-delivered records for already-sealed buckets
        self.buckets_sealed = 0
        self.segments_written = 0

        self._replayed = self._recover()

    # ------------------------------------------------------------------
    # Read-only snapshots
    # ------------------------------------------------------------------
    @classmethod
    def open_read_only(
        cls,
        directory: str,
        bucket_seconds: Optional[float] = None,
        obs=None,
    ) -> "RollupStore":
        """Open a query-only snapshot of the manifest's sealed state.

        A read-only store never creates directories, never sweeps
        orphans, and never touches WAL or segment files -- it is safe to
        point at a store another process is actively writing.  It sees
        exactly what the last manifest swap committed (the unsealed open
        tail lives in the writer's memory and WAL and is invisible
        here), and :meth:`maybe_refresh` re-snapshots when the manifest
        generation advances.

        ``bucket_seconds=None`` adopts whatever the manifest declares;
        passing a value asserts it matches.  A directory without a
        manifest yet (a store mid-first-hour, or empty) opens as an
        empty snapshot rather than failing -- the refresh picks the
        first seal up.
        """
        if not os.path.isdir(directory):
            raise StoreError(f"no rollup store at {directory!r}")
        store = cls.__new__(cls)
        store.directory = directory
        store.config = StoreConfig()
        store.obs = obs if obs is not None else NULL_OBS
        store.read_only = True
        store._t_seal = store.obs.timer("segment.seal")
        store.segments_dir = os.path.join(directory, SEGMENTS_DIR)
        store.compactor = None
        store.wal = None
        store._open = {}
        store._segment_cache = OrderedDict()
        store.ordinal = 0
        store.sealed_skips = 0
        store.buckets_sealed = 0
        store.segments_written = 0
        store._replayed = []
        store._manifest_hint = None
        manifest = store._load_manifest_snapshot()
        if manifest is None:
            manifest = Manifest(
                bucket_seconds
                if bucket_seconds is not None
                else DEFAULT_BUCKET_SECONDS
            )
        elif (
            bucket_seconds is not None
            and manifest.bucket_seconds != bucket_seconds
        ):
            raise StoreError(
                f"store at {directory!r} has bucket_seconds="
                f"{manifest.bucket_seconds}, asked for {bucket_seconds}"
            )
        store.manifest = manifest
        store.bucket_seconds = manifest.bucket_seconds
        store.catalog = manifest.catalog
        return store

    def _load_manifest_snapshot(self):
        """Load the manifest, remembering a cheap change hint (stat)."""
        path = os.path.join(self.directory, MANIFEST_NAME)
        try:
            st = os.stat(path)
        except FileNotFoundError:
            self._manifest_hint = None
            return None
        self._manifest_hint = (st.st_mtime_ns, st.st_ino)
        return Manifest.load(self.directory)

    def maybe_refresh(self, force: bool = False) -> bool:
        """Re-snapshot a read-only store if the manifest moved.

        Returns True when a newer generation was adopted.  The stat
        hint (mtime + inode -- ``os.replace`` always changes the inode)
        makes the no-change case one ``stat`` call, so query endpoints
        can refresh on every request.
        """
        if not self.read_only:
            raise StoreError("maybe_refresh is for read-only stores")
        path = os.path.join(self.directory, MANIFEST_NAME)
        if not force:
            try:
                st = os.stat(path)
            except FileNotFoundError:
                return False
            if self._manifest_hint == (st.st_mtime_ns, st.st_ino):
                return False
        manifest = self._load_manifest_snapshot()
        if manifest is None or manifest.generation == self.manifest.generation:
            return False
        self.manifest = manifest
        self.bucket_seconds = manifest.bucket_seconds
        self.catalog = manifest.catalog
        self._segment_cache.clear()
        return True

    def _assert_writable(self) -> None:
        if self.read_only:
            raise StoreError(
                f"store at {self.directory!r} was opened read-only"
            )

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> List[WalEntry]:
        """Reduce whatever a crash left to manifest + WAL, then replay."""
        # 1. Sweep segment files the manifest does not reference -- the
        #    crash-before-swap window of sealing and compaction -- plus
        #    any half-written atomic-write temp files.
        live = {meta.name for meta in self.manifest.segments}
        for name in os.listdir(self.segments_dir):
            if name not in live:
                os.unlink(os.path.join(self.segments_dir, name))
        for name in os.listdir(self.directory):
            if name.startswith(".tmp-"):
                os.unlink(os.path.join(self.directory, name))

        # 2. Replay the logs into open slices, re-observing the catalog
        #    in global ordinal (stream) order.  Entries for buckets the
        #    manifest already sealed -- the crash-after-swap window of
        #    sealing -- are stale; their logs are dropped.
        sealed = self.manifest.sealed_buckets()
        entries = self.wal.replay()
        kept: List[WalEntry] = []
        stale_buckets = set()
        for entry in entries:
            if entry.bucket in sealed:
                stale_buckets.add(entry.bucket)
                continue
            kept.append(entry)
            self._apply_entry(entry)
            if entry.ordinal > self.ordinal:
                self.ordinal = entry.ordinal
        for bucket in stale_buckets:
            self.wal.drop_bucket(bucket)
        return kept

    def _apply_entry(self, entry: WalEntry) -> None:
        tampering = entry.signature.is_tampering
        self.catalog.observe(
            entry.country,
            entry.signature if tampering else SignatureId.NOT_TAMPERING,
            entry.possibly_tampered and tampering,
        )
        slice_ = self._open.get(entry.bucket)
        if slice_ is None:
            slice_ = self._open[entry.bucket] = BucketSlice(entry.bucket)
        slice_.add(
            entry.country,
            entry.ts,
            entry.signature,
            entry.stage,
            entry.possibly_tampered,
        )

    @property
    def is_dirty(self) -> bool:
        """True when the directory already holds ingested state."""
        return (
            self.ordinal > 0
            or self.manifest.generation > 0
            or bool(self._open)
        )

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def bucket_of(self, ts: float) -> float:
        return math.floor(ts / self.bucket_seconds) * self.bucket_seconds

    def add(self, record: StreamRecord) -> None:
        """Fold one located, classified record.

        Every call consumes one ordinal (the engine's fold count), even
        when the record lands in an already-sealed bucket -- that only
        happens while a resumed source re-delivers records the previous
        incarnation already sealed, and skipping them (rather than
        re-counting) is what keeps seal + resume exactly idempotent.
        """
        self._assert_writable()
        self._replayed = []  # adds invalidate the recovery snapshot
        self.ordinal += 1
        bucket = self.bucket_of(record.ts)
        if bucket in self._sealed_cache():
            self.sealed_skips += 1
            return
        self.catalog.observe_record(record)
        slice_ = self._open.get(bucket)
        if slice_ is None:
            slice_ = self._open[bucket] = BucketSlice(bucket)
        slice_.add(
            record.country,
            record.ts,
            record.signature,
            record.stage,
            record.possibly_tampered,
        )
        self.wal.append(
            WalEntry(
                ordinal=self.ordinal,
                bucket=bucket,
                country=record.country,
                ts=record.ts,
                signature=record.signature,
                stage=record.stage,
                possibly_tampered=record.possibly_tampered,
            )
        )

    def _sealed_cache(self):
        # Sealing is rare relative to ingest; cache the sealed-bucket set
        # keyed by manifest generation.
        cached = getattr(self, "_sealed_memo", None)
        if cached is None or cached[0] != self.manifest.generation:
            cached = (self.manifest.generation, self.manifest.sealed_buckets())
            self._sealed_memo = cached
        return cached[1]

    def flush(self) -> None:
        """Make every applied record durable (WAL fsync)."""
        self._assert_writable()
        self.wal.sync()

    # ------------------------------------------------------------------
    # Sealing and compaction
    # ------------------------------------------------------------------
    def seal_through(self, horizon: float) -> int:
        """Seal every open bucket at or below ``horizon`` (a bucket start).

        Writes one level-0 segment per ripe bucket, commits them all
        with a single manifest swap, then unlinks their WAL logs.
        Returns the number of buckets sealed.
        """
        ripe = sorted(b for b in self._open if b <= horizon)
        return self._seal(ripe)

    def seal_open(self) -> int:
        """Seal everything -- the stream is finished."""
        return self._seal(sorted(self._open))

    def _seal(self, buckets: List[float]) -> int:
        self._assert_writable()
        if not buckets:
            return 0
        rec = getattr(self.obs, "trace_recorder", None)
        if rec is not None and rec.active is not None:
            # The record that tipped the watermark pays for the seal --
            # worth seeing on that request's span tree.
            start = time.perf_counter()
            sealed = self._seal_buckets(buckets)
            duration = time.perf_counter() - start
            self._t_seal.record(duration, start)
            rec.record_span(
                "segment.seal", start, duration,
                attrs={"buckets": len(buckets)},
            )
            return sealed
        with self._t_seal:
            return self._seal_buckets(buckets)

    def _seal_buckets(self, buckets: List[float]) -> int:
        self.wal.sync()  # segment must never get ahead of the log
        new_metas = []
        for bucket in buckets:
            slice_ = self._open[bucket]
            meta = write_segment(
                self.segments_dir,
                self.manifest.allocate_segment_id(),
                0,
                [slice_],
            )
            new_metas.append(meta)
        self.manifest.segments.extend(new_metas)
        self.manifest.save(self.directory)  # commit point
        for bucket in buckets:
            del self._open[bucket]
            self.wal.drop_bucket(bucket)
        self.buckets_sealed += len(buckets)
        self.segments_written += len(new_metas)
        return len(buckets)

    def maybe_compact(self) -> bool:
        """One bounded compaction step, if any level is due."""
        self._assert_writable()
        merged = self.compactor.run_once(self.manifest)
        if merged:
            self._segment_cache.clear()
        return merged

    def compact(self, max_runs: int = 16) -> int:
        """Compact until quiescent (bounded); returns merges performed."""
        self._assert_writable()
        runs = self.compactor.run(self.manifest, max_runs=max_runs)
        if runs:
            self._segment_cache.clear()
        return runs

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _load(self, meta: SegmentMeta) -> Segment:
        segment = self._segment_cache.get(meta.name)
        if segment is not None:
            self._segment_cache.move_to_end(meta.name)
            return segment
        try:
            segment = load_segment(self.segments_dir, meta)
        except StoreError as exc:
            if self.read_only and isinstance(exc.__cause__, FileNotFoundError):
                # A compaction in the writer process deleted this input
                # segment after our snapshot was taken; the caller should
                # maybe_refresh(force=True) and retry against the new
                # manifest generation.
                raise StoreError(
                    f"segment {meta.name!r} vanished under read-only snapshot "
                    f"(generation {self.manifest.generation}); refresh and retry"
                ) from exc
            raise
        self._segment_cache[meta.name] = segment
        while len(self._segment_cache) > _SEGMENT_CACHE_SIZE:
            self._segment_cache.popitem(last=False)
        return segment

    def _scan(self, query: StoreQuery) -> Tuple[List[BucketSlice], QueryResult]:
        """Pushdown scan: slices surviving the filters, plus scan stats."""
        wanted = query.country_set()
        parts: List[BucketSlice] = []
        scanned = skipped = buckets = open_buckets = 0
        for meta in self.manifest.segments:
            if not meta.overlaps(query.start, query.end) or (
                wanted is not None and wanted.isdisjoint(meta.countries)
            ):
                skipped += 1
                continue
            scanned += 1
            for bucket, slice_ in self._load(meta).slices.items():
                if query.bucket_in_range(bucket):
                    buckets += 1
                    parts.append(slice_)
        for bucket in sorted(self._open):
            if query.bucket_in_range(bucket):
                open_buckets += 1
                parts.append(self._open[bucket])
        return parts, QueryResult(
            family=query.family,
            value=None,
            segments_scanned=scanned,
            segments_skipped=skipped,
            buckets_scanned=buckets,
            open_buckets_scanned=open_buckets,
        )

    def query(self, query: StoreQuery) -> QueryResult:
        """Answer one batch-parity family over sealed + open state."""
        parts, result = self._scan(query)
        result.value = execute(query, self.catalog, parts)
        return result

    # ------------------------------------------------------------------
    # Whole-history materialisation (reporting / parity checks)
    # ------------------------------------------------------------------
    def _parts(self) -> Iterator[BucketSlice]:
        for meta in self.manifest.segments:
            yield from self._load(meta).slices.values()
        for bucket in sorted(self._open):
            yield self._open[bucket]

    def to_rollup(self) -> StreamRollup:
        """Materialise the full history as a :class:`StreamRollup`.

        Dict insertion orders are rebuilt from the catalog (countries
        and signature keys in first-seen order, bucket cells
        country-major with buckets sorted), so every batch-parity query
        method of the returned rollup answers byte-for-byte like a
        rollup that saw the whole stream.
        """
        totals: Dict[str, int] = {}
        by_sig: Dict[str, Dict] = {}
        cell_totals: Dict[Tuple[str, float], int] = {}
        cell_matches: Dict[Tuple[str, float], int] = {}
        cell_sigs: Dict[Tuple[str, object, float], int] = {}
        stage_counts: Dict[str, int] = {}
        stage_matched: Dict[str, int] = {}
        sig_counts: Dict = {}
        rollup = StreamRollup(bucket_seconds=self.bucket_seconds)
        for part in self._parts():
            rollup.n_records += part.n_records
            rollup.possibly_tampered += part.possibly_tampered
            for country, n in part.totals.items():
                totals[country] = totals.get(country, 0) + n
                cell = (country, part.bucket)
                cell_totals[cell] = cell_totals.get(cell, 0) + n
            for country, n in part.matches.items():
                cell = (country, part.bucket)
                cell_matches[cell] = cell_matches.get(cell, 0) + n
            for country, sigs in part.by_signature.items():
                mine = by_sig.setdefault(country, {})
                for sig, n in sigs.items():
                    mine[sig] = mine.get(sig, 0) + n
            for (country, sig), n in part.signature_cells.items():
                cell = (country, sig, part.bucket)
                cell_sigs[cell] = cell_sigs.get(cell, 0) + n
            for key, n in part.stage_counts.items():
                stage_counts[key] = stage_counts.get(key, 0) + n
            for key, n in part.stage_matched.items():
                stage_matched[key] = stage_matched.get(key, 0) + n
            for sig, n in part.signature_counts.items():
                sig_counts[sig] = sig_counts.get(sig, 0) + n
            for ts in (part.min_ts, part.max_ts):
                if ts is None:
                    continue
                if rollup.min_ts is None or ts < rollup.min_ts:
                    rollup.min_ts = ts
                if rollup.max_ts is None or ts > rollup.max_ts:
                    rollup.max_ts = ts

        countries = self.catalog.ordered_countries(set(totals))
        rollup.totals = {c: totals[c] for c in countries}
        rollup.by_signature = {
            c: {
                sig: by_sig[c][sig]
                for sig in self.catalog.ordered_sigs(c, set(by_sig.get(c, ())))
            }
            for c in countries
            if c in by_sig
        }
        for country in countries:
            for bucket in sorted(b for c, b in cell_totals if c == country):
                rollup.bucket_totals[(country, bucket)] = cell_totals[
                    (country, bucket)
                ]
        for country in countries:
            for bucket in sorted(b for c, b in cell_matches if c == country):
                rollup.bucket_matches[(country, bucket)] = cell_matches[
                    (country, bucket)
                ]
        for country in countries:
            mine = [(s, b) for c, s, b in cell_sigs if c == country]
            for sig in self.catalog.ordered_sigs(country, {s for s, _ in mine}):
                for bucket in sorted(b for s, b in mine if s == sig):
                    cell = (country, sig, bucket)
                    rollup.bucket_signature[cell] = cell_sigs[cell]
        rollup.stage_counts = dict(sorted(stage_counts.items()))
        rollup.stage_matched = dict(sorted(stage_matched.items()))
        for sig in self.catalog.ordered_global_sigs(set(sig_counts)):
            rollup.signature_counts[sig] = sig_counts[sig]
        return rollup

    # ------------------------------------------------------------------
    # Checkpoint integration
    # ------------------------------------------------------------------
    def checkpoint_state(self) -> dict:
        """O(open buckets) durable state: count + open slices + catalog.

        Syncs the WAL first so every entry at or below the checkpoint's
        count is on disk before the checkpoint that references it.
        """
        self._assert_writable()
        self.wal.sync()
        return {
            "generation": self.manifest.generation,
            "count": self.ordinal,
            "open": [
                [bucket, self._open[bucket].to_payload()]
                for bucket in sorted(self._open)
            ],
            "catalog": self.catalog.to_dict(),
        }

    def restore(self, state: dict) -> None:
        """Re-synchronise a checkpoint against the on-disk manifest.

        The disk may be *ahead* of the checkpoint (a seal or compaction
        swapped the manifest after the checkpoint was written); then the
        checkpoint's slices for now-sealed buckets are dropped and the
        engine's re-delivered records for them will be skipped.  The
        disk being *behind* the checkpoint means the caller pointed the
        store at the wrong directory.

        The WAL is truncated to entries at or below the checkpoint's
        count: later entries describe records the engine will re-pull
        from the source, and keeping them would double-apply.  The
        catalog keeps its recovered (crash-point) state, which is a
        superset of the checkpoint's in the same first-seen order.
        """
        self._assert_writable()
        generation = state["generation"]
        if self.manifest.generation < generation:
            raise CheckpointError(
                f"checkpoint was written at store generation {generation} but "
                f"{self.directory!r} is at {self.manifest.generation}; "
                f"this is not the checkpoint's store"
            )
        count = state["count"]
        sealed = self.manifest.sealed_buckets()
        self._open = {
            bucket: BucketSlice.from_payload(bucket, payload)
            for bucket, payload in state["open"]
            if bucket not in sealed
        }
        self.wal.rewrite(
            entry
            for entry in self._replayed
            if entry.ordinal <= count and entry.bucket not in sealed
        )
        self._replayed = []
        self.ordinal = count
        self.sealed_skips = 0

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        levels = {
            str(level): len(metas) for level, metas in sorted(self.manifest.levels().items())
        }
        return {
            "generation": self.manifest.generation,
            "ordinal": self.ordinal,
            "open_buckets": len(self._open),
            "sealed_buckets": len(self.manifest.sealed_buckets()),
            "sealed_records": self.manifest.sealed_records(),
            "segments": len(self.manifest.segments),
            "levels": levels,
            "live_bytes": sum(meta.size_bytes for meta in self.manifest.segments),
            "buckets_sealed": self.buckets_sealed,
            "segments_written": self.segments_written,
            "sealed_skips": self.sealed_skips,
            "wal_appends": self.wal.appends if self.wal is not None else 0,
            "wal_syncs": self.wal.syncs if self.wal is not None else 0,
            "compaction_runs": self.compactor.runs if self.compactor is not None else 0,
            "segments_merged": (
                self.compactor.segments_merged if self.compactor is not None else 0
            ),
            "compaction_bytes_written": (
                self.compactor.bytes_written if self.compactor is not None else 0
            ),
        }

    def close(self) -> None:
        if self.wal is not None:
            self.wal.close()
        self._segment_cache.clear()
