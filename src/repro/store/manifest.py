"""The atomically-swapped manifest: the store's single source of truth.

``MANIFEST.json`` names every live segment (with its bucket range and
country set, for query pushdown), carries the key catalog snapshot, and
a monotonically increasing **generation**.  Every mutation of sealed
state -- sealing a bucket, compacting segments -- builds the next
manifest in memory and swaps it in with the same fsync'd temp-file +
``os.replace`` + directory-fsync discipline as
:class:`~repro.stream.checkpoint.CheckpointManager`
(:func:`repro._util.atomic_write_json`).

That makes the swap the commit point of every structural change:

* seal:    write segment file → **swap manifest** → unlink WAL log
* compact: write merged file  → **swap manifest** → unlink old segments

A crash on either side of the swap leaves the store consistent: before
it, the new file is an unreferenced orphan (swept on open); after it,
the leftovers are unreferenced old files (also swept).  No bucket is
ever lost or counted twice -- the kill9-during-compaction fire drill in
:mod:`repro.stream.faults` exercises exactly these windows.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Set

from repro._util import atomic_write_json
from repro.errors import StoreError
from repro.store.catalog import KeyCatalog
from repro.store.segment import SegmentMeta

__all__ = ["MANIFEST_NAME", "MANIFEST_VERSION", "Manifest"]

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_VERSION = 1


class Manifest:
    """Live segment list + catalog snapshot + generation counter."""

    def __init__(self, bucket_seconds: float) -> None:
        if bucket_seconds <= 0:
            raise StoreError("bucket_seconds must be positive")
        self.bucket_seconds = bucket_seconds
        self.generation = 0
        self.next_segment_id = 0
        self.catalog = KeyCatalog()
        self.segments: List[SegmentMeta] = []

    # ------------------------------------------------------------------
    def sealed_buckets(self) -> Set[float]:
        return {bucket for meta in self.segments for bucket in meta.buckets}

    def bucket_owners(self) -> Dict[float, int]:
        """bucket -> owning segment id; raises if any bucket is doubled."""
        owners: Dict[float, int] = {}
        for meta in self.segments:
            for bucket in meta.buckets:
                if bucket in owners:
                    raise StoreError(
                        f"manifest corrupt: bucket {bucket} lives in segments "
                        f"{owners[bucket]} and {meta.segment_id}"
                    )
                owners[bucket] = meta.segment_id
        return owners

    def sealed_records(self) -> int:
        return sum(meta.n_records for meta in self.segments)

    def levels(self) -> Dict[int, List[SegmentMeta]]:
        out: Dict[int, List[SegmentMeta]] = {}
        for meta in self.segments:
            out.setdefault(meta.level, []).append(meta)
        return out

    def allocate_segment_id(self) -> int:
        segment_id = self.next_segment_id
        self.next_segment_id += 1
        return segment_id

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "version": MANIFEST_VERSION,
            "generation": self.generation,
            "bucket_seconds": self.bucket_seconds,
            "next_segment_id": self.next_segment_id,
            "catalog": self.catalog.to_dict(),
            "segments": [meta.to_dict() for meta in self.segments],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Manifest":
        version = data.get("version")
        if version != MANIFEST_VERSION:
            raise StoreError(
                f"manifest has schema version {version!r}, "
                f"expected {MANIFEST_VERSION}"
            )
        manifest = cls(bucket_seconds=data["bucket_seconds"])
        manifest.generation = data["generation"]
        manifest.next_segment_id = data["next_segment_id"]
        manifest.catalog = KeyCatalog.from_dict(data["catalog"])
        manifest.segments = [SegmentMeta.from_dict(m) for m in data["segments"]]
        manifest.bucket_owners()  # validate the unique-owner invariant
        return manifest

    # ------------------------------------------------------------------
    def save(self, directory: str) -> None:
        """Swap the next generation in, atomically and durably."""
        self.generation += 1
        atomic_write_json(os.path.join(directory, MANIFEST_NAME), self.to_dict())

    @classmethod
    def load(cls, directory: str) -> Optional["Manifest"]:
        path = os.path.join(directory, MANIFEST_NAME)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "r") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"unreadable manifest {path!r}: {exc}") from exc
        return cls.from_dict(data)
