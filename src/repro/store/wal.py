"""The open-bucket write-ahead log.

Sealed history lives in immutable segments; the *open* buckets -- the
ones still receiving records -- live in memory as
:class:`~repro.store.segment.BucketSlice` objects.  The WAL makes that
in-memory tail durable: every ingested record appends one small JSONL
entry to a per-bucket log file, and reopening the store replays the
logs to reconstruct the open slices (and their catalog registrations)
exactly.

One file per open bucket keeps truncation trivial: sealing a bucket
into a segment simply unlinks its log.  Entries carry the global record
ordinal ``n`` (the engine's fold count), which is what makes replay
idempotent -- a resume replays only entries at or below the checkpoint
count, and re-delivered records re-append under their original
ordinals.

Appends are buffered and fsync'd every ``sync_every`` records (and
always at checkpoint/seal boundaries), so the durability window is
bounded and explicit.  A torn *final* line -- the crash landed
mid-append -- is skipped on replay, same as the JSONL sources treat a
half-written tail; a torn line anywhere else is corruption and raises.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, IO, Iterable, List, Tuple

from repro._util import fsync_directory
from repro.core.model import SignatureId, Stage
from repro.errors import StoreError
from repro.obs import NULL_OBS

__all__ = ["WAL_PREFIX", "WalEntry", "WriteAheadLog"]

WAL_PREFIX = "wal-"

#: Timing-sample stride (power of two) for the per-record append span:
#: only every Nth append is clocked; the recorded span carries weight N
#: in the histogram.  ``WriteAheadLog.appends`` stays exact.
_APPEND_SAMPLE = 4


def _bucket_token(bucket: float) -> str:
    """Filename-safe token for a bucket start (``-``/``.`` are munged)."""
    return format(bucket, ".6f").replace("-", "m").replace(".", "p")


class WalEntry:
    """One logged record: ordinal plus the fields the rollup reads."""

    __slots__ = ("ordinal", "bucket", "country", "ts", "signature", "stage",
                 "possibly_tampered")

    def __init__(
        self,
        ordinal: int,
        bucket: float,
        country: str,
        ts: float,
        signature: SignatureId,
        stage: Stage,
        possibly_tampered: bool,
    ) -> None:
        self.ordinal = ordinal
        self.bucket = bucket
        self.country = country
        self.ts = ts
        self.signature = signature
        self.stage = stage
        self.possibly_tampered = possibly_tampered

    def to_line(self) -> str:
        return json.dumps(
            {
                "n": self.ordinal,
                "b": self.bucket,
                "c": self.country,
                "t": self.ts,
                "s": self.signature.value,
                "g": self.stage.value,
                "p": 1 if self.possibly_tampered else 0,
            },
            separators=(",", ":"),
        )

    @classmethod
    def from_line(cls, line: str) -> "WalEntry":
        data = json.loads(line)
        return cls(
            ordinal=data["n"],
            bucket=data["b"],
            country=data["c"],
            ts=data["t"],
            signature=SignatureId(data["s"]),
            stage=Stage(data["g"]),
            possibly_tampered=bool(data["p"]),
        )


class WriteAheadLog:
    """Per-bucket JSONL logs under ``<store>/wal/``."""

    def __init__(self, directory: str, sync_every: int = 64, obs=NULL_OBS) -> None:
        if sync_every < 1:
            raise StoreError("wal sync_every must be >= 1")
        self.directory = directory
        self.sync_every = sync_every
        os.makedirs(directory, exist_ok=True)
        self._handles: Dict[float, IO[str]] = {}
        self._dirty: Dict[float, bool] = {}
        self._since_sync = 0
        self.appends = 0
        self.syncs = 0
        self.obs = obs if obs is not None else NULL_OBS
        self._t_append = self.obs.timer("wal.append", sample=_APPEND_SAMPLE)
        self._t_fsync = self.obs.timer("wal.fsync")
        self._trace_rec = getattr(self.obs, "trace_recorder", None)

    # ------------------------------------------------------------------
    def _path(self, bucket: float) -> str:
        return os.path.join(self.directory, f"{WAL_PREFIX}{_bucket_token(bucket)}.jsonl")

    def append(self, entry: WalEntry) -> None:
        """Buffered append; fsyncs every ``sync_every`` appends."""
        # The span covers the serialise+write only; a triggered sync is
        # timed separately as wal.fsync so the two stages stay distinct
        # in the latency report.  A buffered append is a few
        # microseconds, so only every _APPEND_SAMPLE-th one is clocked
        # (weight-corrected histogram; ``self.appends`` stays exact).
        # A request-traced append (active context on the recorder) is
        # always clocked for its span tree, but feeds the weighted
        # histogram only on its regular stride.
        rec = self._trace_rec
        if rec is not None and rec.active is not None:
            start = time.perf_counter()
            self._append(entry)
            duration = time.perf_counter() - start
            if not (self.appends - 1) & (_APPEND_SAMPLE - 1):
                self._t_append.record(duration, start)
            rec.record_span("wal.append", start, duration)
        elif self.appends & (_APPEND_SAMPLE - 1):
            self._append(entry)
        else:
            with self._t_append:
                self._append(entry)
        if self._since_sync >= self.sync_every:
            self.sync()

    def _append(self, entry: WalEntry) -> None:
        handle = self._handles.get(entry.bucket)
        if handle is None:
            created = not os.path.exists(self._path(entry.bucket))
            handle = open(self._path(entry.bucket), "a")
            self._handles[entry.bucket] = handle
            if created:
                # The new log file's directory entry must be durable
                # before its contents can be.
                fsync_directory(self.directory)
        handle.write(entry.to_line() + "\n")
        self._dirty[entry.bucket] = True
        self.appends += 1
        self._since_sync += 1

    def sync(self) -> None:
        """Flush and fsync every dirty log file."""
        start = time.perf_counter()
        flushed = False
        for bucket, dirty in list(self._dirty.items()):
            if not dirty:
                continue
            handle = self._handles.get(bucket)
            if handle is None:
                continue
            handle.flush()
            os.fsync(handle.fileno())
            self._dirty[bucket] = False
            flushed = True
        if self._since_sync:
            self.syncs += 1
        self._since_sync = 0
        if flushed:
            # No-op syncs (checkpoint/seal boundaries with nothing
            # dirty) are not recorded; they are not fsync latency.
            duration = time.perf_counter() - start
            self._t_fsync.record(duration, start)
            rec = self._trace_rec
            if rec is not None and rec.active is not None:
                rec.record_span("wal.fsync", start, duration)

    def drop_bucket(self, bucket: float) -> None:
        """A sealed bucket needs no log; close and unlink it."""
        handle = self._handles.pop(bucket, None)
        if handle is not None:
            handle.close()
        self._dirty.pop(bucket, None)
        try:
            os.unlink(self._path(bucket))
        except FileNotFoundError:
            pass

    def close(self) -> None:
        self.sync()
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()
        self._dirty.clear()

    # ------------------------------------------------------------------
    def replay(self) -> List[WalEntry]:
        """All durable entries, in global ordinal order.

        A torn final line in a file (crash mid-append) is dropped; a
        torn line followed by more data is corruption and raises.
        """
        entries: List[WalEntry] = []
        for name in sorted(os.listdir(self.directory)):
            if not (name.startswith(WAL_PREFIX) and name.endswith(".jsonl")):
                continue
            path = os.path.join(self.directory, name)
            with open(path, "r") as fh:
                lines = fh.read().split("\n")
            for index, line in enumerate(lines):
                if not line.strip():
                    continue
                try:
                    entries.append(WalEntry.from_line(line))
                except (json.JSONDecodeError, KeyError, ValueError) as exc:
                    trailing = all(not later.strip() for later in lines[index + 1:])
                    if trailing:
                        break  # torn tail from a crash mid-append
                    raise StoreError(
                        f"corrupt WAL line {index + 1} in {path!r}: {exc}"
                    ) from exc
        entries.sort(key=lambda e: e.ordinal)
        return entries

    def rewrite(self, entries: Iterable[WalEntry]) -> None:
        """Replace every log with exactly ``entries`` (used on resume).

        Restoring a checkpoint truncates the WAL to the checkpoint's
        record count; entries past it describe records the engine will
        re-pull from the source, and keeping them would double-apply on
        the next replay.
        """
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()
        self._dirty.clear()
        self._since_sync = 0
        for name in list(os.listdir(self.directory)):
            if name.startswith(WAL_PREFIX) and name.endswith(".jsonl"):
                os.unlink(os.path.join(self.directory, name))
        by_bucket: Dict[float, List[WalEntry]] = {}
        for entry in entries:
            by_bucket.setdefault(entry.bucket, []).append(entry)
        for bucket, bucket_entries in by_bucket.items():
            bucket_entries.sort(key=lambda e: e.ordinal)
            with open(self._path(bucket), "w") as fh:
                for entry in bucket_entries:
                    fh.write(entry.to_line() + "\n")
                fh.flush()
                os.fsync(fh.fileno())
        fsync_directory(self.directory)

    def bucket_files(self) -> List[Tuple[str, str]]:
        """(file name, path) of every log currently on disk."""
        out = []
        for name in sorted(os.listdir(self.directory)):
            if name.startswith(WAL_PREFIX) and name.endswith(".jsonl"):
                out.append((name, os.path.join(self.directory, name)))
        return out
