"""The store's query engine: batch-parity answers with pushdown.

Executes the four existing batch-parity question families --
``country_tampering_rate``, ``timeseries``, ``signature_hour_counts``,
``stage_statistics`` -- against sealed segments plus the in-memory open
slices, without materialising history.

Two pushdowns prune the scan using manifest metadata alone:

* **time range** (``start``/``end``, compared against bucket start
  times): segments whose ``[min_bucket, max_bucket]`` lies outside the
  range are never opened;
* **country** (``countries``): segments whose recorded country set is
  disjoint from the filter are never opened.

Integer counters from the surviving parts are summed (associative, any
order), then results are assembled in the
:class:`~repro.store.catalog.KeyCatalog` first-seen order with the
exact float arithmetic of :class:`~repro.stream.rollup.StreamRollup` --
same divisions, same accumulation order -- so an unfiltered query is
byte-for-byte equal to an in-memory rollup over the same records.
Filtered queries use the same global first-seen key order (documented
semantics: for a key set restricted by the filter, the *relative* order
of surviving keys is preserved).
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.model import SignatureId
from repro.errors import StoreError
from repro.store.catalog import KeyCatalog
from repro.store.segment import BucketSlice

__all__ = ["QUERY_FAMILIES", "StoreQuery", "QueryResult", "execute"]

QUERY_FAMILIES = (
    "country_tampering_rate",
    "timeseries",
    "signature_hour_counts",
    "stage_statistics",
)


@dataclasses.dataclass(frozen=True)
class StoreQuery:
    """One question: a family plus optional pushdown filters.

    ``start``/``end`` select whole buckets by start time
    (``start <= bucket < end``); per-bucket counters cannot subdivide an
    hour.  ``countries`` restricts country-keyed families;
    ``signature_hour_counts`` additionally requires ``country``.
    """

    family: str
    start: Optional[float] = None
    end: Optional[float] = None
    countries: Optional[Tuple[str, ...]] = None
    country: Optional[str] = None

    def __post_init__(self) -> None:
        if self.family not in QUERY_FAMILIES:
            raise StoreError(
                f"unknown query family {self.family!r}; "
                f"expected one of {QUERY_FAMILIES}"
            )
        if self.family == "signature_hour_counts" and not self.country:
            raise StoreError("signature_hour_counts requires a country")
        if self.family == "stage_statistics" and self.countries:
            raise StoreError(
                "stage statistics are global (stage counters are not "
                "partitioned by country); drop the countries filter"
            )
        if self.start is not None and self.end is not None and self.end <= self.start:
            raise StoreError("query end must be greater than start")

    def country_set(self) -> Optional[frozenset]:
        if self.family == "signature_hour_counts":
            return frozenset((self.country,))
        if self.countries is not None:
            return frozenset(self.countries)
        return None

    def bucket_in_range(self, bucket: float) -> bool:
        if self.start is not None and bucket < self.start:
            return False
        if self.end is not None and bucket >= self.end:
            return False
        return True


@dataclasses.dataclass
class QueryResult:
    """The answer plus what the pushdown actually scanned."""

    family: str
    value: object
    segments_scanned: int
    segments_skipped: int
    buckets_scanned: int
    open_buckets_scanned: int


def execute(
    query: StoreQuery,
    catalog: KeyCatalog,
    parts: Iterable[BucketSlice],
) -> object:
    """Aggregate ``parts`` (bucket slices surviving pushdown) and answer.

    ``parts`` may arrive in any order -- only integer counters are
    summed from them; output ordering comes from the catalog.
    """
    wanted = query.country_set()
    if query.family == "country_tampering_rate":
        return _country_tampering_rate(catalog, parts, wanted)
    if query.family == "timeseries":
        return _timeseries(catalog, parts, wanted)
    if query.family == "signature_hour_counts":
        return _signature_hour_counts(catalog, parts, query.country)
    return _stage_statistics(catalog, parts)


# ----------------------------------------------------------------------
# Family implementations -- each mirrors the StreamRollup method of the
# same name exactly: same divisions, same accumulation order.
# ----------------------------------------------------------------------
def _country_tampering_rate(
    catalog: KeyCatalog,
    parts: Iterable[BucketSlice],
    wanted: Optional[frozenset],
) -> Dict[str, float]:
    totals: Dict[str, int] = {}
    by_sig: Dict[str, Dict[SignatureId, int]] = {}
    for part in parts:
        for country, n in part.totals.items():
            if wanted is not None and country not in wanted:
                continue
            totals[country] = totals.get(country, 0) + n
        for country, sigs in part.by_signature.items():
            if wanted is not None and country not in wanted:
                continue
            mine = by_sig.setdefault(country, {})
            for sig, n in sigs.items():
                mine[sig] = mine.get(sig, 0) + n
    out: Dict[str, float] = {}
    for country in catalog.ordered_countries(set(totals)):
        sigs = by_sig.get(country, {})
        total = totals[country]
        # Accumulate tampering percentages in the country's first-seen
        # signature order, exactly as the rollup's generator sum does.
        rate = sum(
            100.0 * sigs[sig] / total
            for sig in catalog.ordered_sigs(country, set(sigs))
            if sig.is_tampering
        )
        out[country] = rate
    return out


def _timeseries(
    catalog: KeyCatalog,
    parts: Iterable[BucketSlice],
    wanted: Optional[frozenset],
) -> Dict[str, List[Tuple[float, float]]]:
    bucket_totals: Dict[Tuple[str, float], int] = {}
    bucket_matches: Dict[Tuple[str, float], int] = {}
    for part in parts:
        for country, n in part.totals.items():
            if wanted is not None and country not in wanted:
                continue
            cell = (country, part.bucket)
            bucket_totals[cell] = bucket_totals.get(cell, 0) + n
        for country, n in part.matches.items():
            if wanted is not None and country not in wanted:
                continue
            cell = (country, part.bucket)
            bucket_matches[cell] = bucket_matches.get(cell, 0) + n
    # A cell with tampering matches but no total connections cannot be
    # produced by a consistent rollup (every match is also a total); it
    # means a segment or WAL slice is corrupt or partial.  Refuse to
    # answer rather than fabricate a rate or silently drop the cell.
    for cell, n in bucket_matches.items():
        if n and bucket_totals.get(cell, 0) <= 0:
            raise StoreError(
                f"inconsistent store state: bucket {cell[1]} has {n} "
                f"tampering matches for {cell[0]!r} but no total "
                "connections (corrupt or partial segment/WAL slice)"
            )
    present = {country for country, _ in bucket_totals}
    return {
        country: [
            (
                b,
                100.0
                * bucket_matches.get((country, b), 0)
                / bucket_totals[(country, b)],
            )
            for b in sorted(
                bucket for c, bucket in bucket_totals if c == country
            )
        ]
        for country in catalog.ordered_countries(present)
    }


def _signature_hour_counts(
    catalog: KeyCatalog,
    parts: Iterable[BucketSlice],
    country: str,
) -> Dict[SignatureId, List[Tuple[float, int]]]:
    cells: Dict[Tuple[SignatureId, float], int] = {}
    for part in parts:
        for (c, sig), n in part.signature_cells.items():
            if c != country:
                continue
            cell = (sig, part.bucket)
            cells[cell] = cells.get(cell, 0) + n
    present = {sig for sig, _ in cells}
    out: Dict[SignatureId, List[Tuple[float, int]]] = {}
    for sig in catalog.ordered_sigs(country, present):
        if not sig.is_tampering:
            continue
        series = sorted((b, n) for (s, b), n in cells.items() if s == sig)
        out[sig] = series
    return out


def _stage_statistics(
    catalog: KeyCatalog,
    parts: Iterable[BucketSlice],
) -> Dict[str, object]:
    total = 0
    n_possibly = 0
    stage_counts: Dict[str, int] = {}
    stage_matched: Dict[str, int] = {}
    sig_counts: Dict[SignatureId, int] = {}
    for part in parts:
        total += part.n_records
        n_possibly += part.possibly_tampered
        for key, n in part.stage_counts.items():
            stage_counts[key] = stage_counts.get(key, 0) + n
        for key, n in part.stage_matched.items():
            stage_matched[key] = stage_matched.get(key, 0) + n
        for sig, n in part.signature_counts.items():
            sig_counts[sig] = sig_counts.get(sig, 0) + n
    matched_total = sum(sig_counts.values())

    def share(n: int, d: int) -> float:
        return 100.0 * n / d if d else 0.0

    signature_counts: Counter = Counter()
    for sig in catalog.ordered_global_sigs(set(sig_counts)):
        signature_counts[sig] = sig_counts[sig]
    return {
        "total_connections": total,
        "possibly_tampered": n_possibly,
        "possibly_tampered_pct": share(n_possibly, total),
        "stage_share_pct": {
            k: share(v, n_possibly) for k, v in sorted(stage_counts.items())
        },
        "stage_coverage_pct": {
            k: share(stage_matched.get(k, 0), v)
            for k, v in sorted(stage_counts.items())
        },
        "signature_coverage_pct": share(matched_total, n_possibly),
        "signature_counts": signature_counts,
    }
