"""Statistics for sampled measurements: intervals and changepoints.

The pipeline reports rates estimated from a 1-in-10,000 sample, so two
statistical tools belong next to it:

* :func:`wilson_interval` -- a confidence interval for a sampled
  proportion that behaves at the extremes (0%, 100%, tiny n), fit for
  the per-country rates of Figure 4.
* :func:`detect_changepoints` -- a rolling mean-shift detector over a
  match-rate timeseries, operationalising §5.6's claim that longitudinal
  passive measurement surfaces noteworthy events: fed the Iranian series,
  it finds the September 2022 escalation on its own.
"""

from __future__ import annotations

import dataclasses
import math
import statistics
from typing import List, Optional, Sequence, Tuple

__all__ = ["wilson_interval", "Changepoint", "detect_changepoints"]


def wilson_interval(successes: int, total: int, z: float = 1.96) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion, as fractions.

    Returns ``(low, high)`` with ``0 <= low <= high <= 1``.  ``z`` is the
    normal quantile (1.96 ≈ 95%).
    """
    if total < 0 or successes < 0 or successes > total:
        raise ValueError("need 0 <= successes <= total")
    if total == 0:
        return (0.0, 1.0)
    p = successes / total
    z2 = z * z
    denom = 1.0 + z2 / total
    centre = (p + z2 / (2 * total)) / denom
    margin = (z / denom) * math.sqrt(p * (1 - p) / total + z2 / (4 * total * total))
    return (max(0.0, centre - margin), min(1.0, centre + margin))


@dataclasses.dataclass(frozen=True)
class Changepoint:
    """One detected level shift in a timeseries."""

    ts: float  # bucket timestamp where the new level begins
    before_mean: float
    after_mean: float

    @property
    def delta(self) -> float:
        return self.after_mean - self.before_mean

    @property
    def is_increase(self) -> bool:
        return self.delta > 0


def detect_changepoints(
    series: Sequence[Tuple[float, float]],
    window: int = 5,
    threshold_sigma: float = 3.0,
    min_delta: float = 5.0,
) -> List[Changepoint]:
    """Detect level shifts in a (timestamp, value) series.

    Slides two adjacent windows of ``window`` points; a changepoint is
    declared where the later window's mean departs from the earlier's by
    more than ``threshold_sigma`` standard deviations of the earlier
    window *and* by at least ``min_delta`` in absolute value (so flat,
    quiet series do not fire on noise).  Overlapping detections collapse
    to the strongest point of each run.
    """
    if window < 2:
        raise ValueError("window must be >= 2")
    points = list(series)
    if len(points) < 2 * window:
        return []

    candidates: List[Tuple[int, float, Changepoint]] = []
    for i in range(window, len(points) - window + 1):
        before = [v for _, v in points[i - window : i]]
        after = [v for _, v in points[i : i + window]]
        mu_b = statistics.fmean(before)
        mu_a = statistics.fmean(after)
        sigma = statistics.pstdev(before)
        floor = max(sigma, 1e-9)
        score = abs(mu_a - mu_b) / floor
        if score >= threshold_sigma and abs(mu_a - mu_b) >= min_delta:
            candidates.append(
                (i, score, Changepoint(ts=points[i][0], before_mean=mu_b, after_mean=mu_a))
            )

    # Collapse runs of adjacent candidates to their strongest member.
    out: List[Changepoint] = []
    run: List[Tuple[int, float, Changepoint]] = []
    for item in candidates:
        if run and item[0] > run[-1][0] + 1:
            out.append(max(run, key=lambda t: t[1])[2])
            run = []
        run.append(item)
    if run:
        out.append(max(run, key=lambda t: t[1])[2])
    return out
