"""The tampering-signature taxonomy (the paper's Table 1).

Nineteen signatures, grouped by *stage* -- how far the connection got
before the tampering event.  Signature names follow the paper's
``⟨X → Y⟩`` convention, where X is what the server saw before the event
and Y what it saw after (``∅`` meaning silence for three seconds or
more).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Tuple

__all__ = ["Stage", "SignatureId", "SignatureInfo", "SIGNATURES", "signature_info"]


class Stage(enum.Enum):
    """How far the connection progressed before the tampering event."""

    POST_SYN = "post-syn"  # mid-handshake: SYN seen, no handshake ACK
    POST_ACK = "post-ack"  # handshake done, no client data seen
    POST_PSH = "post-psh"  # exactly one client data packet seen
    POST_DATA = "post-data"  # two or more client data packets seen
    NONE = "none"  # graceful or unclassifiable stage

    @property
    def is_data_bearing(self) -> bool:
        """True if the trigger content was visible to the server."""
        return self in (Stage.POST_PSH, Stage.POST_DATA)


class SignatureId(enum.Enum):
    """The 19 tampering signatures plus the two non-match outcomes."""

    # --- Post-SYN ---
    SYN_NONE = "syn.none"
    SYN_RST = "syn.rst"
    SYN_RSTACK = "syn.rstack"
    SYN_RST_RSTACK = "syn.rst_rstack"
    # --- Post-ACK ---
    ACK_NONE = "ack.none"
    ACK_RST = "ack.rst"
    ACK_RST_RST = "ack.rst_rst"
    ACK_RSTACK = "ack.rstack"
    ACK_RSTACK_RSTACK = "ack.rstack_rstack"
    # --- Post-PSH ---
    PSH_NONE = "psh.none"
    PSH_RST = "psh.rst"
    PSH_RSTACK = "psh.rstack"
    PSH_RST_RSTACK = "psh.rst_rstack"
    PSH_RSTACK_RSTACK = "psh.rstack_rstack"
    PSH_RST_EQ_RST = "psh.rst_eq_rst"
    PSH_RST_NEQ_RST = "psh.rst_neq_rst"
    PSH_RST_RST0 = "psh.rst_rst0"
    # --- Post-multiple-data ---
    DATA_RST = "data.rst"
    DATA_RSTACK = "data.rstack"
    # --- Non-matches ---
    NOT_TAMPERING = "not_tampering"
    OTHER = "other"  # possibly tampered but matching no signature

    @property
    def is_tampering(self) -> bool:
        """True for the 19 signatures (excludes NOT_TAMPERING and OTHER)."""
        return self not in (SignatureId.NOT_TAMPERING, SignatureId.OTHER)

    @property
    def stage(self) -> Stage:
        return SIGNATURES[self].stage if self in SIGNATURES else Stage.NONE

    @property
    def display(self) -> str:
        """The paper's ⟨X → Y⟩ rendering."""
        return SIGNATURES[self].display if self in SIGNATURES else self.value

    @property
    def is_drop(self) -> bool:
        """True for the three packet-drop (∅) signatures."""
        return self in (SignatureId.SYN_NONE, SignatureId.ACK_NONE, SignatureId.PSH_NONE)


@dataclasses.dataclass(frozen=True)
class SignatureInfo:
    """Metadata for one signature row of Table 1."""

    sig: SignatureId
    stage: Stage
    display: str
    description: str
    prior_work: str = ""


SIGNATURES: Dict[SignatureId, SignatureInfo] = {
    info.sig: info
    for info in [
        SignatureInfo(
            SignatureId.SYN_NONE, Stage.POST_SYN, "⟨SYN → ∅⟩",
            "No packets after a single SYN", "[16, 32, 62]",
        ),
        SignatureInfo(
            SignatureId.SYN_RST, Stage.POST_SYN, "⟨SYN → RST⟩",
            "One or more RSTs after a single SYN", "[84]*, [15, 62]",
        ),
        SignatureInfo(
            SignatureId.SYN_RSTACK, Stage.POST_SYN, "⟨SYN → RST+ACK⟩",
            "One or more RST+ACKs after the SYN", "[84]*, [15, 62]",
        ),
        SignatureInfo(
            SignatureId.SYN_RST_RSTACK, Stage.POST_SYN, "⟨SYN → RST; RST+ACK⟩",
            "One or more RST and RST+ACK after a single SYN", "[20]",
        ),
        SignatureInfo(
            SignatureId.ACK_NONE, Stage.POST_ACK, "⟨SYN; ACK → ∅⟩",
            "No packets received after a SYN and an ACK", "[10, 12, 15, 16, 75]",
        ),
        SignatureInfo(
            SignatureId.ACK_RST, Stage.POST_ACK, "⟨SYN; ACK → RST⟩",
            "Exactly one RST after a SYN and an ACK", "[84]*, [10, 12, 22]",
        ),
        SignatureInfo(
            SignatureId.ACK_RST_RST, Stage.POST_ACK, "⟨SYN; ACK → RST; RST⟩",
            "More than one RST after a SYN and an ACK", "[15, 22]",
        ),
        SignatureInfo(
            SignatureId.ACK_RSTACK, Stage.POST_ACK, "⟨SYN; ACK → RST+ACK⟩",
            "Exactly one RST+ACK after a SYN and an ACK", "[84]*",
        ),
        SignatureInfo(
            SignatureId.ACK_RSTACK_RSTACK, Stage.POST_ACK, "⟨SYN; ACK → RST+ACK; RST+ACK⟩",
            "More than one RST+ACK after a SYN and an ACK", "—",
        ),
        SignatureInfo(
            SignatureId.PSH_NONE, Stage.POST_PSH, "⟨PSH+ACK → ∅⟩",
            "No packets received after PSH+ACK packets", "[12, 19, 88]",
        ),
        SignatureInfo(
            SignatureId.PSH_RST, Stage.POST_PSH, "⟨PSH+ACK → RST⟩",
            "Exactly one RST", "[14, 48, 74, 82, 83]",
        ),
        SignatureInfo(
            SignatureId.PSH_RSTACK, Stage.POST_PSH, "⟨PSH+ACK → RST+ACK⟩",
            "Exactly one RST+ACK", "[14, 48, 74, 82, 83]",
        ),
        SignatureInfo(
            SignatureId.PSH_RST_RSTACK, Stage.POST_PSH, "⟨PSH+ACK → RST; RST+ACK⟩",
            "At least one RST and one RST+ACK", "[20]*, [82, 83]",
        ),
        SignatureInfo(
            SignatureId.PSH_RSTACK_RSTACK, Stage.POST_PSH, "⟨PSH+ACK → RST+ACK; RST+ACK⟩",
            "At least two RST+ACKs", "[20]*, [82]",
        ),
        SignatureInfo(
            SignatureId.PSH_RST_EQ_RST, Stage.POST_PSH, "⟨PSH+ACK → RST = RST⟩",
            "More than one RST; same ACK numbers", "—",
        ),
        SignatureInfo(
            SignatureId.PSH_RST_NEQ_RST, Stage.POST_PSH, "⟨PSH+ACK → RST ≠ RST⟩",
            "More than one RST; change in ACK numbers", "[84]*",
        ),
        SignatureInfo(
            SignatureId.PSH_RST_RST0, Stage.POST_PSH, "⟨PSH+ACK → RST; RST₀⟩",
            "More than one RST; one of the ACK numbers is zero", "—",
        ),
        SignatureInfo(
            SignatureId.DATA_RST, Stage.POST_DATA, "⟨PSH+ACK; Data → RST⟩",
            "One or more RSTs not immediately after first PSH+ACK", "—",
        ),
        SignatureInfo(
            SignatureId.DATA_RSTACK, Stage.POST_DATA, "⟨PSH+ACK; Data → RST+ACK⟩",
            "One or more RST+ACKs not immediately after first PSH+ACK", "—",
        ),
    ]
}

#: All tampering signatures in Table 1 order.
TABLE1_ORDER: Tuple[SignatureId, ...] = tuple(SIGNATURES)


def signature_info(sig: SignatureId) -> SignatureInfo:
    """Metadata for a signature; raises KeyError for non-match outcomes."""
    return SIGNATURES[sig]


def signatures_in_stage(stage: Stage) -> List[SignatureId]:
    """The Table 1 signatures belonging to one stage."""
    return [sig for sig, info in SIGNATURES.items() if info.stage == stage]
