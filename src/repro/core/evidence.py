"""Injection evidence: IP-ID and TTL inconsistencies, scanner heuristics.

The paper's §4.3 validates the signatures by showing that the suspected
injected packets carry IP-IDs and TTLs inconsistent with the client's own
packets: a client's consecutive packets differ by 0-1 in IP-ID and ~0 in
arrival TTL, while a middlebox forging RSTs uses its own counters and its
own initial TTL from a different path position.

§4.2's scanner heuristics (Hiesgen et al.) are also implemented here:
option-less SYNs, high arrival TTLs (≥200), fixed non-zero IP-IDs, and
the ZMap-specific IP-ID constant 54321.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.cdn.collector import ConnectionSample
from repro.core.sequence import reconstruct_order
from repro.netstack.packet import Packet

__all__ = [
    "EvidenceSummary",
    "max_ipid_delta",
    "min_ipid_delta",
    "max_ttl_delta",
    "min_ttl_delta",
    "looks_like_scanner",
    "looks_like_zmap",
    "evidence_for_sample",
    "ZMAP_IP_ID",
]

#: The fixed Identification value ZMap writes into its probes.
ZMAP_IP_ID = 54321

#: Arrival TTL at or above this is "high" (scanner heuristic #2).
HIGH_TTL_THRESHOLD = 200


def _ordered(sample: ConnectionSample) -> List[Packet]:
    return reconstruct_order(sample.packets)


def max_ipid_delta(sample: ConnectionSample) -> Optional[int]:
    """Maximum |ΔIP-ID| between each RST and its preceding non-RST packet.

    This is Figure 2's metric.  Returns None when the sample is IPv6 (no
    IP-ID), has no RSTs, or has no non-RST packet before any RST.
    """
    if sample.ip_version != 4:
        return None
    ordered = _ordered(sample)
    best: Optional[int] = None
    last_non_rst: Optional[Packet] = None
    for pkt in ordered:
        if pkt.flags.is_rst:
            if last_non_rst is not None:
                delta = abs(pkt.ip_id - last_non_rst.ip_id)
                best = delta if best is None else max(best, delta)
        else:
            last_non_rst = pkt
    return best


def min_ipid_delta(sample: ConnectionSample) -> Optional[int]:
    """Minimum |ΔIP-ID| between consecutive packets (baseline check).

    The paper reports 93.4% of connections have a minimum difference of
    0 or 1 -- the property that makes large deltas meaningful.
    """
    if sample.ip_version != 4:
        return None
    ordered = _ordered(sample)
    if len(ordered) < 2:
        return None
    return min(abs(b.ip_id - a.ip_id) for a, b in zip(ordered, ordered[1:]))


def max_ttl_delta(sample: ConnectionSample) -> Optional[int]:
    """Signed TTL change between each RST and its preceding non-RST packet.

    Figure 3's metric: the value with the largest magnitude is returned,
    keeping its sign (injected packets may arrive with a higher *or*
    lower TTL than the client's, depending on the injector's initial TTL
    and path position).  Works for IPv4 and IPv6 (hop limit).
    """
    ordered = _ordered(sample)
    best: Optional[int] = None
    last_non_rst: Optional[Packet] = None
    for pkt in ordered:
        if pkt.flags.is_rst:
            if last_non_rst is not None:
                delta = pkt.ttl - last_non_rst.ttl
                if best is None or abs(delta) > abs(best):
                    best = delta
        else:
            last_non_rst = pkt
    return best


def min_ttl_delta(sample: ConnectionSample) -> Optional[int]:
    """Minimum |ΔTTL| between consecutive packets (baseline check)."""
    ordered = _ordered(sample)
    if len(ordered) < 2:
        return None
    return min(abs(b.ttl - a.ttl) for a, b in zip(ordered, ordered[1:]))


# ---------------------------------------------------------------------------
# Scanner heuristics (§4.2)
# ---------------------------------------------------------------------------

def looks_like_scanner(sample: ConnectionSample) -> bool:
    """True if the connection shows any Hiesgen-style scanner property.

    (1) SYN without TCP options, (2) arrival TTL ≥ 200, or (3) a fixed
    non-zero IP-ID across all packets.
    """
    syns = [p for p in sample.packets if p.flags.is_syn]
    if syns and all(not p.options for p in syns):
        return True
    # High TTL applies to the prober's SYN only: injected tear-down
    # packets also arrive with unusual TTLs, but that is injection
    # evidence (Figure 3), not scanner evidence.
    if any(p.ttl >= HIGH_TTL_THRESHOLD for p in syns):
        return True
    if sample.ip_version == 4 and len(sample.packets) >= 2:
        non_injected_ids = {p.ip_id for p in sample.packets}
        if len(non_injected_ids) == 1 and 0 not in non_injected_ids:
            return True
    return False


def looks_like_zmap(sample: ConnectionSample) -> bool:
    """True if the SYN carries ZMap's static fields (IP-ID 54321, no options)."""
    for pkt in sample.packets:
        if pkt.flags.is_syn and not pkt.flags.is_ack:
            return pkt.ip_id == ZMAP_IP_ID and not pkt.options
    return False


# ---------------------------------------------------------------------------
# Combined summary
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class EvidenceSummary:
    """All evidence metrics for one sample."""

    max_ipid_delta: Optional[int]
    min_ipid_delta: Optional[int]
    max_ttl_delta: Optional[int]
    min_ttl_delta: Optional[int]
    scanner: bool
    zmap: bool

    @property
    def ipid_inconsistent(self) -> bool:
        """Strong IP-ID injection indicator (paper uses delta > 1)."""
        return self.max_ipid_delta is not None and self.max_ipid_delta > 1

    @property
    def ttl_inconsistent(self) -> bool:
        """Strong TTL injection indicator (|delta| > 1)."""
        return self.max_ttl_delta is not None and abs(self.max_ttl_delta) > 1


def evidence_for_sample(sample: ConnectionSample) -> EvidenceSummary:
    """Compute every evidence metric for one sample."""
    return EvidenceSummary(
        max_ipid_delta=max_ipid_delta(sample),
        min_ipid_delta=min_ipid_delta(sample),
        max_ttl_delta=max_ttl_delta(sample),
        min_ttl_delta=min_ttl_delta(sample),
        scanner=looks_like_scanner(sample),
        zmap=looks_like_zmap(sample),
    )
