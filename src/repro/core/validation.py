"""Ground-truth validation of the classifier (simulation-only).

The real deployment cannot score itself -- §4.3 resorts to indirect
header evidence because nobody labels live traffic.  The simulator *can*
label: every sample carries ``truth_tampered`` / ``truth_vendor``
annotations, so this module computes the confusion matrix, per-vendor
recall, and per-client-kind false-positive attribution that the paper's
validation argues about qualitatively.

Nothing here feeds back into classification; it exists for evaluation,
regression tests, and calibration of the synthetic world.
"""

from __future__ import annotations

import dataclasses
from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Tuple

from repro.core.aggregate import AnalysisDataset, AnalyzedConnection
from repro.core.model import SignatureId

__all__ = ["ConfusionSummary", "VendorRecall", "ValidationReport", "score_dataset"]


@dataclasses.dataclass(frozen=True)
class ConfusionSummary:
    """Binary detection quality against simulator ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def total(self) -> int:
        return (
            self.true_positives
            + self.false_positives
            + self.false_negatives
            + self.true_negatives
        )

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def false_positive_rate(self) -> float:
        denom = self.false_positives + self.true_negatives
        return self.false_positives / denom if denom else 0.0


@dataclasses.dataclass(frozen=True)
class VendorRecall:
    """Detection quality for one middlebox vendor's tampering events."""

    vendor: str
    events: int
    detected: int
    signatures: Tuple[Tuple[SignatureId, int], ...]

    @property
    def recall(self) -> float:
        return self.detected / self.events if self.events else 0.0

    @property
    def dominant_signature(self) -> SignatureId:
        return self.signatures[0][0] if self.signatures else SignatureId.OTHER


@dataclasses.dataclass(frozen=True)
class ValidationReport:
    """Full validation result for one analyzed dataset."""

    confusion: ConfusionSummary
    per_vendor: Tuple[VendorRecall, ...]
    false_positive_kinds: Tuple[Tuple[str, int], ...]

    def vendor(self, name: str) -> VendorRecall:
        for row in self.per_vendor:
            if row.vendor == name:
                return row
        raise KeyError(f"no tampering events from vendor {name!r}")


def score_dataset(dataset: AnalysisDataset) -> ValidationReport:
    """Score a dataset's classifications against its ground truth.

    Connections without ground-truth annotations (``truth_tampered`` is
    None) are skipped.
    """
    tp = fp = fn = tn = 0
    vendor_events: Counter = Counter()
    vendor_detected: Counter = Counter()
    vendor_signatures: Dict[str, Counter] = defaultdict(Counter)
    fp_kinds: Counter = Counter()

    for conn in dataset:
        if conn.truth_tampered is None:
            continue
        truth = bool(conn.truth_tampered)
        detected = conn.tampered
        if truth:
            vendor = conn.truth_vendor or "unknown"
            vendor_events[vendor] += 1
            if detected:
                tp += 1
                vendor_detected[vendor] += 1
                vendor_signatures[vendor][conn.signature] += 1
            else:
                fn += 1
        elif detected:
            fp += 1
            fp_kinds[conn.truth_client_kind] += 1
        else:
            tn += 1

    per_vendor = tuple(
        VendorRecall(
            vendor=vendor,
            events=vendor_events[vendor],
            detected=vendor_detected[vendor],
            signatures=tuple(vendor_signatures[vendor].most_common()),
        )
        for vendor in sorted(vendor_events)
    )
    return ValidationReport(
        confusion=ConfusionSummary(tp, fp, fn, tn),
        per_vendor=per_vendor,
        false_positive_kinds=tuple(fp_kinds.most_common()),
    )
