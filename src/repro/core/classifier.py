"""The end-to-end classification pipeline.

:class:`TamperingClassifier` turns a raw
:class:`~repro.cdn.collector.ConnectionSample` into a
:class:`ClassificationResult`: the matched signature, the connection
stage, the protocol and domain extracted from the trigger payload when it
reached the server (Post-PSH and later), plus the fields downstream
aggregation needs.  This is the component a CDN would run in production;
everything it reads is available in a genuine server-side capture.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.cdn.collector import ConnectionSample
from repro.core.featurekey import FeatureKey, feature_key
from repro.core.model import SignatureId, Stage
from repro.core.signatures import INACTIVITY_SECONDS, SignatureMatch, match_signature
from repro.errors import ClassificationError
from repro.netstack.http import extract_host, is_http_request
from repro.netstack.tls import extract_sni, is_tls_client_hello

__all__ = [
    "ClassifierConfig",
    "ClassificationResult",
    "TamperingClassifier",
    "ClassifierCacheInfo",
]


@dataclasses.dataclass(frozen=True)
class ClassifierConfig:
    """Pipeline tunables (defaults = the paper's settings)."""

    max_packets: int = 10
    inactivity_seconds: float = INACTIVITY_SECONDS
    reorder: bool = True  # reconstruct packet order before matching
    cache_size: int = 4096  # feature-key memo entries; 0 disables the memo

    def __post_init__(self) -> None:
        if self.max_packets < 1:
            raise ClassificationError("max_packets must be >= 1")
        if self.inactivity_seconds <= 0:
            raise ClassificationError("inactivity_seconds must be positive")
        if self.cache_size < 0:
            raise ClassificationError("cache_size must be >= 0")


@dataclasses.dataclass
class ClassificationResult:
    """One classified connection."""

    sample: ConnectionSample
    signature: SignatureId
    stage: Stage
    possibly_tampered: bool
    protocol: Optional[str]  # "tls" | "http" | None
    domain: Optional[str]  # extracted from the trigger payload, if any
    silence_gap: float
    n_data_segments: int

    @property
    def is_tampering(self) -> bool:
        return self.signature.is_tampering

    @property
    def conn_id(self) -> int:
        return self.sample.conn_id


def _extract_protocol_domain(sample: ConnectionSample):
    """Protocol and domain from the reassembled client payload."""
    payload = sample.first_payload()
    if not payload:
        return None, None
    if is_tls_client_hello(payload):
        return "tls", extract_sni(payload)
    if is_http_request(payload):
        return "http", extract_host(payload)
    return None, None


@dataclasses.dataclass(frozen=True)
class ClassifierCacheInfo:
    """Memo statistics, mirroring :func:`functools.lru_cache`'s info."""

    hits: int
    misses: int
    maxsize: int
    currsize: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


#: What the memo stores per feature key -- exactly the fields of a
#: :class:`SignatureMatch` the classifier propagates (the packet lists
#: belong to individual samples and are never shared).
_Decision = Tuple[SignatureId, Stage, bool, float, int]


class TamperingClassifier:
    """Stateless classifier over connection samples.

    "Stateless" refers to the decision function: with the memo enabled
    (``config.cache_size > 0``) the instance carries a bounded LRU cache
    keyed by :func:`repro.core.featurekey.feature_key`, but cached and
    uncached classification are behaviour-identical by construction --
    the key captures everything the decision reads.
    """

    def __init__(self, config: Optional[ClassifierConfig] = None) -> None:
        self.config = config or ClassifierConfig()
        self._cache: "OrderedDict[FeatureKey, _Decision]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    # Memo plumbing
    # ------------------------------------------------------------------
    def cache_info(self) -> ClassifierCacheInfo:
        """Hit/miss/size statistics for the feature-key memo."""
        return ClassifierCacheInfo(
            hits=self.cache_hits,
            misses=self.cache_misses,
            maxsize=self.config.cache_size,
            currsize=len(self._cache),
        )

    def cache_clear(self) -> None:
        self._cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0

    def _match(self, sample: ConnectionSample) -> _Decision:
        """The signature decision for one sample, memoized when enabled."""
        config = self.config
        if config.cache_size:
            key = feature_key(
                sample.packets,
                window_end=sample.window_end,
                max_packets=config.max_packets,
                reorder=config.reorder,
            )
            cached = self._cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                self._cache.move_to_end(key)
                return cached
            self.cache_misses += 1
        else:
            key = None
        match: SignatureMatch = match_signature(
            sample.packets,
            window_end=sample.window_end,
            max_packets=config.max_packets,
            inactivity_seconds=config.inactivity_seconds,
            reorder=config.reorder,
        )
        decision: _Decision = (
            match.signature,
            match.stage,
            match.possibly_tampered,
            match.silence_gap,
            match.n_data_segments,
        )
        if key is not None:
            self._cache[key] = decision
            if len(self._cache) > config.cache_size:
                self._cache.popitem(last=False)
        return decision

    # ------------------------------------------------------------------
    # Classification front-ends
    # ------------------------------------------------------------------
    def classify(self, sample: ConnectionSample) -> ClassificationResult:
        """Classify one sample."""
        signature, stage, possibly_tampered, silence_gap, n_data = self._match(sample)
        protocol, domain = _extract_protocol_domain(sample)
        return ClassificationResult(
            sample=sample,
            signature=signature,
            stage=stage,
            possibly_tampered=possibly_tampered,
            protocol=protocol,
            domain=domain,
            silence_gap=silence_gap,
            n_data_segments=n_data,
        )

    def classify_all(self, samples: Iterable[ConnectionSample]) -> List[ClassificationResult]:
        """Classify a batch of samples."""
        return [self.classify(s) for s in samples]

    def iter_classify(self, samples: Iterable[ConnectionSample]) -> Iterator[ClassificationResult]:
        """Streaming variant of :meth:`classify_all`."""
        for sample in samples:
            yield self.classify(sample)

    def classify_batch(
        self,
        samples: Iterable[ConnectionSample],
        workers: int = 0,
        batch_size: int = 256,
    ) -> List[ClassificationResult]:
        """Classify across a process pool; results in input order.

        ``workers <= 1`` falls back to the sequential path.  Otherwise
        samples are partitioned across ``workers`` processes through the
        streaming shard machinery
        (:class:`~repro.stream.shard.ShardedClassifierPool`); each worker
        runs its own classifier with this instance's config (memo
        included), and the ordered merge guarantees output order equals
        input order.  Returns are full :class:`ClassificationResult`
        values bound to the caller's sample objects -- parity with
        :meth:`classify_all` is exact.
        """
        if workers < 0:
            raise ClassificationError("workers must be >= 0")
        samples = list(samples)
        if workers <= 1 or len(samples) < 2:
            return self.classify_all(samples)
        # Imported lazily: repro.stream.shard imports this module.
        from repro.stream.shard import ShardConfig, ShardedClassifierPool
        from repro.stream.source import StreamItem

        shard_config = ShardConfig(
            n_workers=workers,
            batch_size=max(1, min(batch_size, len(samples))),
        )
        with ShardedClassifierPool(shard_config, self.config) as pool:
            records = list(
                pool.process(StreamItem(sample=s) for s in samples)
            )
        results: List[ClassificationResult] = []
        for sample, record in zip(samples, records):
            results.append(
                ClassificationResult(
                    sample=sample,
                    signature=record.signature,
                    stage=record.stage,
                    possibly_tampered=record.possibly_tampered,
                    protocol=record.protocol,
                    domain=record.domain,
                    silence_gap=record.silence_gap,
                    n_data_segments=record.n_data_segments,
                )
            )
        return results
