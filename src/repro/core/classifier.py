"""The end-to-end classification pipeline.

:class:`TamperingClassifier` turns a raw
:class:`~repro.cdn.collector.ConnectionSample` into a
:class:`ClassificationResult`: the matched signature, the connection
stage, the protocol and domain extracted from the trigger payload when it
reached the server (Post-PSH and later), plus the fields downstream
aggregation needs.  This is the component a CDN would run in production;
everything it reads is available in a genuine server-side capture.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.cdn.collector import ConnectionSample
from repro.core.model import SignatureId, Stage
from repro.core.signatures import INACTIVITY_SECONDS, SignatureMatch, match_signature
from repro.errors import ClassificationError
from repro.netstack.http import extract_host, is_http_request
from repro.netstack.tls import extract_sni, is_tls_client_hello

__all__ = ["ClassifierConfig", "ClassificationResult", "TamperingClassifier"]


@dataclasses.dataclass(frozen=True)
class ClassifierConfig:
    """Pipeline tunables (defaults = the paper's settings)."""

    max_packets: int = 10
    inactivity_seconds: float = INACTIVITY_SECONDS
    reorder: bool = True  # reconstruct packet order before matching

    def __post_init__(self) -> None:
        if self.max_packets < 1:
            raise ClassificationError("max_packets must be >= 1")
        if self.inactivity_seconds <= 0:
            raise ClassificationError("inactivity_seconds must be positive")


@dataclasses.dataclass
class ClassificationResult:
    """One classified connection."""

    sample: ConnectionSample
    signature: SignatureId
    stage: Stage
    possibly_tampered: bool
    protocol: Optional[str]  # "tls" | "http" | None
    domain: Optional[str]  # extracted from the trigger payload, if any
    silence_gap: float
    n_data_segments: int

    @property
    def is_tampering(self) -> bool:
        return self.signature.is_tampering

    @property
    def conn_id(self) -> int:
        return self.sample.conn_id


def _extract_protocol_domain(sample: ConnectionSample):
    """Protocol and domain from the reassembled client payload."""
    payload = sample.first_payload()
    if not payload:
        return None, None
    if is_tls_client_hello(payload):
        return "tls", extract_sni(payload)
    if is_http_request(payload):
        return "http", extract_host(payload)
    return None, None


class TamperingClassifier:
    """Stateless classifier over connection samples."""

    def __init__(self, config: Optional[ClassifierConfig] = None) -> None:
        self.config = config or ClassifierConfig()

    def classify(self, sample: ConnectionSample) -> ClassificationResult:
        """Classify one sample."""
        match: SignatureMatch = match_signature(
            sample.packets,
            window_end=sample.window_end,
            max_packets=self.config.max_packets,
            inactivity_seconds=self.config.inactivity_seconds,
            reorder=self.config.reorder,
        )
        protocol, domain = _extract_protocol_domain(sample)
        return ClassificationResult(
            sample=sample,
            signature=match.signature,
            stage=match.stage,
            possibly_tampered=match.possibly_tampered,
            protocol=protocol,
            domain=domain,
            silence_gap=match.silence_gap,
            n_data_segments=match.n_data_segments,
        )

    def classify_all(self, samples: Iterable[ConnectionSample]) -> List[ClassificationResult]:
        """Classify a batch of samples."""
        return [self.classify(s) for s in samples]

    def iter_classify(self, samples: Iterable[ConnectionSample]) -> Iterator[ClassificationResult]:
        """Streaming variant of :meth:`classify_all`."""
        for sample in samples:
            yield self.classify(sample)
