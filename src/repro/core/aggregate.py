"""Aggregation: the groupings behind the paper's figures and tables.

:class:`AnalyzedConnection` is one classified connection annotated with
geolocation; :class:`AnalysisDataset` holds a batch of them and exposes
one method per analysis artifact:

* :meth:`AnalysisDataset.signature_country_matrix` -- Figure 1
* :meth:`AnalysisDataset.country_signature_shares` -- Figure 4
* :meth:`AnalysisDataset.asn_match_proportions` -- Figure 5
* :meth:`AnalysisDataset.timeseries` -- Figures 6, 8 and 9
* :meth:`AnalysisDataset.ip_version_rates` -- Figure 7(a)
* :meth:`AnalysisDataset.protocol_post_psh_rates` -- Figure 7(b)
* :meth:`AnalysisDataset.category_table` -- Table 2
* :meth:`AnalysisDataset.tampered_domains` -- Table 3 input
* :meth:`AnalysisDataset.overlap_matrix` -- Figure 10
* :meth:`AnalysisDataset.stage_statistics` -- Table 1 companion numbers
"""

from __future__ import annotations

import dataclasses
import math
from collections import Counter, defaultdict
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.cdn.categorize import CategoryDB
from repro.cdn.geo import GeoDatabase
from repro.core.classifier import ClassificationResult
from repro.core.model import SignatureId, Stage

__all__ = ["AnalyzedConnection", "AnalysisDataset", "regression_slope"]

#: Signature stages the paper restricts attack-sensitive analyses to.
POST_ACK_PSH_STAGES = (Stage.POST_ACK, Stage.POST_PSH)


@dataclasses.dataclass
class AnalyzedConnection:
    """One classified, geolocated connection (the analysis unit)."""

    conn_id: int
    ts: float
    country: str
    asn: int
    signature: SignatureId
    stage: Stage
    ip_version: int
    server_port: int
    protocol: Optional[str]
    domain: Optional[str]
    client_ip: str
    possibly_tampered: bool
    truth_tampered: Optional[bool] = None
    truth_vendor: Optional[str] = None
    truth_domain: Optional[str] = None
    truth_client_kind: str = "browser"

    @property
    def tampered(self) -> bool:
        """True when one of the 19 tampering signatures matched."""
        return self.signature.is_tampering

    @property
    def wire_protocol(self) -> str:
        """Protocol by destination port ('tls' for 443, else 'http')."""
        return "tls" if self.server_port == 443 else "http"


def analyze_results(
    results: Iterable[ClassificationResult],
    geodb: GeoDatabase,
    timestamps: Optional[Mapping[int, float]] = None,
) -> List[AnalyzedConnection]:
    """Annotate classification results with geolocation and timing.

    ``timestamps`` optionally maps ``conn_id`` to the connection start
    time; when absent, each sample's earliest packet timestamp is used.
    """
    out: List[AnalyzedConnection] = []
    for res in results:
        sample = res.sample
        record = geodb.lookup_or_none(sample.client_ip)
        country = record.country if record else "??"
        asn = record.asn if record else -1
        if timestamps is not None and sample.conn_id in timestamps:
            ts = timestamps[sample.conn_id]
        else:
            ts = min((p.ts for p in sample.packets), default=0.0)
        out.append(
            AnalyzedConnection(
                conn_id=sample.conn_id,
                ts=ts,
                country=country,
                asn=asn,
                signature=res.signature,
                stage=res.stage,
                ip_version=sample.ip_version,
                server_port=sample.server_port,
                protocol=res.protocol,
                domain=res.domain,
                client_ip=sample.client_ip,
                possibly_tampered=res.possibly_tampered,
                truth_tampered=sample.truth_tampered,
                truth_vendor=sample.truth_vendor,
                truth_domain=sample.truth_domain,
                truth_client_kind=sample.truth_client_kind,
            )
        )
    return out


def regression_slope(points: Sequence[Tuple[float, float]]) -> float:
    """Least-squares slope through the origin of (x, y) points.

    The paper quotes through-origin slopes for Figure 7 (IPv4 vs IPv6
    tampering rates ≈ 0.92; TLS vs HTTP ≈ 0.3).
    """
    num = sum(x * y for x, y in points)
    den = sum(x * x for x, _ in points)
    return num / den if den else 0.0


class AnalysisDataset:
    """A batch of analyzed connections with per-artifact groupings."""

    def __init__(self, connections: Sequence[AnalyzedConnection]) -> None:
        self.connections = list(connections)

    @classmethod
    def from_results(
        cls,
        results: Iterable[ClassificationResult],
        geodb: GeoDatabase,
        timestamps: Optional[Mapping[int, float]] = None,
    ) -> "AnalysisDataset":
        return cls(analyze_results(results, geodb, timestamps))

    def __len__(self) -> int:
        return len(self.connections)

    def __iter__(self):
        return iter(self.connections)

    # ------------------------------------------------------------------
    # Basic filters
    # ------------------------------------------------------------------
    def filter(self, predicate) -> "AnalysisDataset":
        """A new dataset of connections satisfying ``predicate``."""
        return AnalysisDataset([c for c in self.connections if predicate(c)])

    def in_countries(self, countries: Iterable[str]) -> "AnalysisDataset":
        wanted = set(countries)
        return self.filter(lambda c: c.country in wanted)

    def post_ack_psh(self) -> "AnalysisDataset":
        """Connections whose signature is in the Post-ACK/Post-PSH stages.

        The paper restricts attack-sensitive results to these stages
        because Post-SYN matches can be SYN floods or scanners (§4.2).
        """
        return self.filter(lambda c: c.tampered and c.stage in POST_ACK_PSH_STAGES)

    @property
    def countries(self) -> List[str]:
        return sorted({c.country for c in self.connections})

    # ------------------------------------------------------------------
    # Table 1 companion statistics
    # ------------------------------------------------------------------
    def stage_statistics(self) -> Dict[str, object]:
        """Possibly-tampered share, per-stage shares, per-stage coverage.

        Mirrors §4.1's headline numbers: 25.7% possibly tampered; stage
        shares 43.2 / 16.1 / 5.3 / 33.0 (+2.3 other); coverage within
        stage 99.5 / 98.7 / 97.9 / 69.2; overall coverage 86.9%.
        """
        total = len(self.connections)
        possibly = [c for c in self.connections if c.possibly_tampered]
        n_possibly = len(possibly)

        stage_counts: Counter = Counter()
        stage_matched: Counter = Counter()
        for c in possibly:
            stage = c.stage if c.stage != Stage.NONE else None
            key = stage.value if stage else "other"
            stage_counts[key] += 1
            if c.tampered:
                stage_matched[key] += 1
        matched_total = sum(1 for c in possibly if c.tampered)

        def share(n: int, d: int) -> float:
            return 100.0 * n / d if d else 0.0

        return {
            "total_connections": total,
            "possibly_tampered": n_possibly,
            "possibly_tampered_pct": share(n_possibly, total),
            "stage_share_pct": {k: share(v, n_possibly) for k, v in sorted(stage_counts.items())},
            "stage_coverage_pct": {
                k: share(stage_matched.get(k, 0), v) for k, v in sorted(stage_counts.items())
            },
            "signature_coverage_pct": share(matched_total, n_possibly),
            "signature_counts": Counter(c.signature for c in possibly if c.tampered),
        }

    # ------------------------------------------------------------------
    # Figure 1: per-signature country distribution
    # ------------------------------------------------------------------
    def signature_country_matrix(self) -> Dict[SignatureId, Dict[str, float]]:
        """For each signature, each country's share of its matches (%)"""
        counts: Dict[SignatureId, Counter] = defaultdict(Counter)
        for c in self.connections:
            if c.tampered:
                counts[c.signature][c.country] += 1
        out: Dict[SignatureId, Dict[str, float]] = {}
        for sig, counter in counts.items():
            total = sum(counter.values())
            out[sig] = {country: 100.0 * n / total for country, n in counter.most_common()}
        return out

    def baseline_country_distribution(self) -> Dict[str, float]:
        """Each country's share of *all* connections (%) -- Figure 1's foil."""
        counter = Counter(c.country for c in self.connections)
        total = sum(counter.values())
        return {country: 100.0 * n / total for country, n in counter.most_common()}

    # ------------------------------------------------------------------
    # Figure 4: per-country signature shares
    # ------------------------------------------------------------------
    def country_signature_shares(self) -> Dict[str, Dict[SignatureId, float]]:
        """Per country: % of its connections matching each signature.

        Includes a ``NOT_TAMPERING`` entry so each country's column sums
        to ~100 (OTHER connections fold into NOT_TAMPERING, matching the
        figure's 'Not Tampering' band).
        """
        by_country: Dict[str, Counter] = defaultdict(Counter)
        totals: Counter = Counter()
        for c in self.connections:
            totals[c.country] += 1
            key = c.signature if c.tampered else SignatureId.NOT_TAMPERING
            by_country[c.country][key] += 1
        return {
            country: {
                sig: 100.0 * n / totals[country] for sig, n in counter.items()
            }
            for country, counter in by_country.items()
        }

    def country_tampering_rate(self) -> Dict[str, float]:
        """Per country: % of connections matching any tampering signature."""
        shares = self.country_signature_shares()
        return {
            country: sum(pct for sig, pct in sigs.items() if sig.is_tampering)
            for country, sigs in shares.items()
        }

    # ------------------------------------------------------------------
    # Figure 5: per-AS match proportions
    # ------------------------------------------------------------------
    def asn_match_proportions(
        self, top_share: float = 0.8, min_connections: int = 1
    ) -> Dict[str, List[Tuple[int, float, float]]]:
        """Per country: (asn, match %, share of country's connections).

        Only the largest ASes that together originate ``top_share`` of a
        country's connections are included, as in Figure 5;
        ``min_connections`` additionally drops ASes whose sample is too
        small for a stable proportion estimate.
        """
        per_asn: Dict[str, Counter] = defaultdict(Counter)
        per_asn_matched: Dict[str, Counter] = defaultdict(Counter)
        country_totals: Counter = Counter()
        for c in self.connections:
            per_asn[c.country][c.asn] += 1
            country_totals[c.country] += 1
            if c.tampered:
                per_asn_matched[c.country][c.asn] += 1

        out: Dict[str, List[Tuple[int, float, float]]] = {}
        for country, counter in per_asn.items():
            total = country_totals[country]
            rows: List[Tuple[int, float, float]] = []
            covered = 0
            for asn, n in counter.most_common():
                if covered >= top_share * total and rows:
                    break
                if n < min_connections:
                    # Too small for a stable proportion estimate -- and it
                    # must not count toward the top_share coverage either,
                    # or the cutoff fires early and drops qualifying ASes.
                    continue
                covered += n
                matched = per_asn_matched[country].get(asn, 0)
                rows.append((asn, 100.0 * matched / n, 100.0 * n / total))
            out[country] = rows
        return out

    def asn_spread(self, top_share: float = 0.8, min_connections: int = 1) -> Dict[str, float]:
        """Per country: max-min spread of per-AS match proportions.

        Low spread ⇒ centralized tampering (CN, IR); high spread ⇒
        decentralized (RU, UA, PK) -- the Figure 5 observation.
        """
        out: Dict[str, float] = {}
        for country, rows in self.asn_match_proportions(top_share, min_connections).items():
            if len(rows) >= 2:
                rates = [rate for _, rate, _ in rows]
                out[country] = max(rates) - min(rates)
            else:
                out[country] = 0.0
        return out

    # ------------------------------------------------------------------
    # Figures 6 / 8 / 9: timeseries
    # ------------------------------------------------------------------
    def timeseries(
        self,
        bucket_seconds: float = 3600.0,
        countries: Optional[Sequence[str]] = None,
        signatures: Optional[Set[SignatureId]] = None,
        stages: Optional[Sequence[Stage]] = None,
        per_signature: bool = False,
    ) -> Dict[str, List[Tuple[float, float]]]:
        """Match percentage over time.

        Keyed by country (default) or by signature display string when
        ``per_signature`` is set (Figures 8 and 9).  Each value is a list
        of (bucket_start, percent) sorted by time; the denominator is
        the bucket's total connection count within the filter scope.
        """
        scope = self.connections
        if countries is not None:
            wanted = set(countries)
            scope = [c for c in scope if c.country in wanted]

        def is_match(c: AnalyzedConnection) -> bool:
            if not c.tampered:
                return False
            if signatures is not None and c.signature not in signatures:
                return False
            if stages is not None and c.stage not in stages:
                return False
            return True

        totals: Dict[Tuple[str, float], int] = Counter()
        matches: Dict[Tuple[str, float], int] = Counter()
        all_buckets: Dict[str, Set[float]] = defaultdict(set)

        for c in scope:
            bucket = math.floor(c.ts / bucket_seconds) * bucket_seconds
            if per_signature:
                totals[("__all__", bucket)] += 1
                all_buckets["__all__"].add(bucket)
                if is_match(c):
                    key = c.signature.display
                    matches[(key, bucket)] += 1
                    all_buckets[key].add(bucket)
            else:
                totals[(c.country, bucket)] += 1
                all_buckets[c.country].add(bucket)
                if is_match(c):
                    matches[(c.country, bucket)] += 1

        out: Dict[str, List[Tuple[float, float]]] = {}
        if per_signature:
            buckets = sorted(all_buckets.get("__all__", ()))
            series_keys = sorted(k for k in all_buckets if k != "__all__")
            for key in series_keys:
                out[key] = [
                    (
                        b,
                        100.0 * matches.get((key, b), 0) / totals.get(("__all__", b), 1),
                    )
                    for b in buckets
                ]
        else:
            for key, buckets in all_buckets.items():
                out[key] = [
                    (b, 100.0 * matches.get((key, b), 0) / totals.get((key, b), 1))
                    for b in sorted(buckets)
                ]
        return out

    # ------------------------------------------------------------------
    # Figure 7: IP version and protocol comparisons
    # ------------------------------------------------------------------
    def ip_version_rates(self, min_connections: int = 1) -> Dict[str, Tuple[float, float]]:
        """Per country: (IPv4 %, IPv6 %) of Post-ACK/Post-PSH matches.

        Countries with fewer than ``min_connections`` samples in either
        address family are omitted: a rate estimated from a handful of
        connections says nothing (Turkmenistan's 2% IPv6 share would
        otherwise contribute pure noise to Figure 7a).
        """
        totals: Dict[Tuple[str, int], int] = Counter()
        matched: Dict[Tuple[str, int], int] = Counter()
        for c in self.connections:
            totals[(c.country, c.ip_version)] += 1
            if c.tampered and c.stage in POST_ACK_PSH_STAGES:
                matched[(c.country, c.ip_version)] += 1
        out: Dict[str, Tuple[float, float]] = {}
        for country in {c for c, _ in totals}:
            t4, t6 = totals.get((country, 4), 0), totals.get((country, 6), 0)
            if t4 < min_connections or t6 < min_connections:
                continue
            out[country] = (
                100.0 * matched.get((country, 4), 0) / t4,
                100.0 * matched.get((country, 6), 0) / t6,
            )
        return out

    def protocol_post_psh_rates(self) -> Dict[str, Tuple[float, float]]:
        """Per country: (TLS %, HTTP %) of Post-PSH matches by wire protocol."""
        totals: Dict[Tuple[str, str], int] = Counter()
        matched: Dict[Tuple[str, str], int] = Counter()
        for c in self.connections:
            proto = c.wire_protocol
            totals[(c.country, proto)] += 1
            if c.tampered and c.stage == Stage.POST_PSH:
                matched[(c.country, proto)] += 1
        out: Dict[str, Tuple[float, float]] = {}
        for country in {c for c, _ in totals}:
            t_tls, t_http = totals.get((country, "tls"), 0), totals.get((country, "http"), 0)
            if t_tls == 0 or t_http == 0:
                continue
            out[country] = (
                100.0 * matched.get((country, "tls"), 0) / t_tls,
                100.0 * matched.get((country, "http"), 0) / t_http,
            )
        return out

    # ------------------------------------------------------------------
    # Table 2: category analysis
    # ------------------------------------------------------------------
    def tampered_domains(
        self,
        country: Optional[str] = None,
        threshold: int = 100,
        window_seconds: float = 86400.0,
    ) -> Set[str]:
        """Domains with ≥ ``threshold`` Post-PSH matches in some window.

        The paper counts a domain as tampered within a region only when
        it exceeds 100 Post-PSH matches in a one-day period.
        """
        counts: Dict[Tuple[str, float], int] = Counter()
        for c in self.connections:
            if country is not None and c.country != country:
                continue
            if not (c.tampered and c.stage in (Stage.POST_PSH, Stage.POST_DATA) and c.domain):
                continue
            day = math.floor(c.ts / window_seconds)
            counts[(c.domain, day)] += 1
        return {domain for (domain, _), n in counts.items() if n >= threshold}

    def domains_seen(self, country: Optional[str] = None) -> Set[str]:
        """All domains observed in requests from ``country`` (or anywhere)."""
        return {
            c.domain
            for c in self.connections
            if c.domain and (country is None or c.country == country)
        }

    def category_table(
        self,
        categories: CategoryDB,
        countries: Sequence[str],
        threshold: int = 100,
        top_n: int = 3,
        include_global: bool = True,
    ) -> Dict[str, List[Tuple[str, float, float]]]:
        """Table 2: per region, top categories of tampered traffic.

        Each row is (category, % of region's tampered connections in the
        category, % of the region's seen domains in the category that are
        tampered -- the paper's 'coverage').
        """
        regions: List[Optional[str]] = ([None] if include_global else []) + list(countries)
        out: Dict[str, List[Tuple[str, float, float]]] = {}
        for region in regions:
            label = region or "Global"
            tampered = self.tampered_domains(country=region, threshold=threshold)
            conns = [
                c
                for c in self.connections
                if (region is None or c.country == region)
                and c.tampered
                and c.stage in (Stage.POST_PSH, Stage.POST_DATA)
                and c.domain
            ]
            if not conns:
                out[label] = []
                continue
            cat_conn_counts: Counter = Counter()
            for c in conns:
                for cat in categories.categories_of(c.domain):
                    cat_conn_counts[cat] += 1
            total_tampered_conns = len(conns)

            seen = self.domains_seen(country=region)
            rows: List[Tuple[str, float, float]] = []
            for cat, n in cat_conn_counts.most_common(top_n):
                cat_domains_seen = {d for d in seen if cat in categories.categories_of(d)}
                cat_domains_tampered = {d for d in tampered if cat in categories.categories_of(d)}
                coverage = (
                    100.0 * len(cat_domains_tampered) / len(cat_domains_seen)
                    if cat_domains_seen
                    else 0.0
                )
                rows.append((cat, 100.0 * n / total_tampered_conns, coverage))
            out[label] = rows
        return out

    # ------------------------------------------------------------------
    # Figure 10: signature overlap for IP-domain pairs
    # ------------------------------------------------------------------
    def overlap_matrix(self) -> Dict[Tuple[str, str], int]:
        """Counts of (first signature, next signature) per IP-domain pair.

        Consecutive Post-PSH-stage observations of the same (client IP,
        domain) pair: for each adjacent pair in time, the earlier and the
        later signature (display strings; NOT_TAMPERING included).
        """
        per_pair: Dict[Tuple[str, str], List[Tuple[float, SignatureId]]] = defaultdict(list)
        for c in self.connections:
            if not c.domain:
                continue
            if c.stage == Stage.POST_PSH or (not c.tampered):
                sig = c.signature if c.tampered else SignatureId.NOT_TAMPERING
                per_pair[(c.client_ip, c.domain)].append((c.ts, sig))

        matrix: Dict[Tuple[str, str], int] = Counter()
        for observations in per_pair.values():
            if len(observations) < 2:
                continue
            observations.sort(key=lambda item: item[0])
            for (_, first), (_, nxt) in zip(observations, observations[1:]):
                first_name = first.display if first.is_tampering else "Not Tampering"
                next_name = nxt.display if nxt.is_tampering else "Not Tampering"
                matrix[(first_name, next_name)] += 1
        return dict(matrix)

    def overlap_consistency(self) -> float:
        """Fraction of transitions where the signature repeats (diagonal)."""
        matrix = self.overlap_matrix()
        total = sum(matrix.values())
        if not total:
            return 0.0
        diagonal = sum(n for (a, b), n in matrix.items() if a == b)
        return diagonal / total
