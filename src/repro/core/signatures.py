"""Signature matching: the decision logic behind Table 1.

Given a connection sample's reconstructed inbound packets, this module
decides (a) whether the connection is *possibly tampered* -- it contains a
RST, or it went silent for three seconds without a FIN handshake -- and
(b) which of the nineteen tampering signatures (if any) it matches.

The stage split follows §4.1:

* **Post-SYN** -- only SYN packets seen (no handshake-completing ACK).
* **Post-ACK** -- handshake completed, but no client data arrived.
* **Post-PSH** -- the event (tear-down or silence) follows *immediately*
  after the first client data segment: nothing but RSTs (and
  retransmissions of that same segment) arrived afterwards.  This is the
  crisp censorship group -- blocking decisions fire on the packet that
  carries the SNI / Host / GET.
* **Post-Data** -- the event arrived only after further packets: more
  data segments, or the client's ACKs/FIN that prove the server's
  response got through.  The paper's ⟨PSH+ACK; Data → ...⟩ signatures
  say "not immediately after first PSH+ACK" -- this group therefore
  absorbs keyword-triggered commercial devices *and* organic noise
  (abortive closes, idle keep-alives), which is why its signature
  coverage is the taxonomy's weakest (69.2% in the paper).

Connections that do not fall cleanly into a stage (the paper's 2.3%
residue, e.g. a SYN followed by several bare ACKs and a RST) classify as
``OTHER``.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.core.model import SignatureId, Stage
from repro.core.sequence import reconstruct_order
from repro.netstack.packet import Packet

__all__ = ["SignatureMatch", "match_signature", "INACTIVITY_SECONDS"]

#: The paper's inactivity threshold for declaring silence (∅).
INACTIVITY_SECONDS = 3.0


@dataclasses.dataclass
class SignatureMatch:
    """Outcome of matching one connection against the signature set."""

    signature: SignatureId
    stage: Stage
    possibly_tampered: bool
    ordered: List[Packet]
    rst_packets: List[Packet]
    n_data_segments: int
    saw_fin: bool
    silence_gap: float

    @property
    def is_tampering(self) -> bool:
        return self.signature.is_tampering


def _distinct_data_segments(packets: Sequence[Packet]) -> List[Packet]:
    """Client data segments, de-duplicated by starting sequence number.

    Retransmissions of the same segment must not promote a connection
    from Post-PSH to Post-Data: the client only ever *sent* one logical
    data packet.
    """
    seen = set()
    out: List[Packet] = []
    for pkt in packets:
        if pkt.has_payload and not pkt.flags.is_syn and not pkt.flags.is_rst:
            if pkt.seq not in seen:
                seen.add(pkt.seq)
                out.append(pkt)
    return out


def _silence_gap(
    ordered: Sequence[Packet],
    window_end: float,
    max_packets: int,
) -> float:
    """Longest observable quiet period, per the collection semantics.

    Internal gaps between consecutive packets always count.  The trailing
    gap (last packet to window close) counts only when the capture was
    *not* truncated at ``max_packets`` -- a full buffer says nothing about
    what followed.
    """
    gap = 0.0
    for a, b in zip(ordered, ordered[1:]):
        gap = max(gap, b.ts - a.ts)
    if len(ordered) < max_packets and ordered:
        gap = max(gap, window_end - ordered[-1].ts)
    return gap


def _split_rsts(packets: Sequence[Packet]) -> Tuple[List[Packet], List[Packet]]:
    """(pure RSTs, RST+ACKs) among ``packets``."""
    pure = [p for p in packets if p.flags.is_pure_rst]
    withack = [p for p in packets if p.flags.is_rst_ack]
    return pure, withack


def _match_post_syn(pure: List[Packet], withack: List[Packet], silent: bool) -> SignatureId:
    if pure and withack:
        return SignatureId.SYN_RST_RSTACK
    if pure:
        return SignatureId.SYN_RST
    if withack:
        return SignatureId.SYN_RSTACK
    if silent:
        return SignatureId.SYN_NONE
    return SignatureId.OTHER


def _match_post_ack(pure: List[Packet], withack: List[Packet], silent: bool) -> SignatureId:
    if pure and withack:
        # Mixed teardown after the handshake is not in Table 1.
        return SignatureId.OTHER
    if pure:
        return SignatureId.ACK_RST if len(pure) == 1 else SignatureId.ACK_RST_RST
    if withack:
        return SignatureId.ACK_RSTACK if len(withack) == 1 else SignatureId.ACK_RSTACK_RSTACK
    if silent:
        return SignatureId.ACK_NONE
    return SignatureId.OTHER


def _match_post_psh(pure: List[Packet], withack: List[Packet], silent: bool) -> SignatureId:
    if pure and withack:
        return SignatureId.PSH_RST_RSTACK
    if withack:
        return SignatureId.PSH_RSTACK if len(withack) == 1 else SignatureId.PSH_RSTACK_RSTACK
    if pure:
        if len(pure) == 1:
            return SignatureId.PSH_RST
        acks = [p.ack for p in pure]
        zeros = [a for a in acks if a == 0]
        if zeros and len(zeros) < len(acks):
            return SignatureId.PSH_RST_RST0
        if len(set(acks)) == 1:
            return SignatureId.PSH_RST_EQ_RST
        return SignatureId.PSH_RST_NEQ_RST
    if silent:
        return SignatureId.PSH_NONE
    return SignatureId.OTHER


def _match_post_data(pure: List[Packet], withack: List[Packet]) -> SignatureId:
    if pure and withack:
        return SignatureId.OTHER
    if pure:
        return SignatureId.DATA_RST
    if withack:
        return SignatureId.DATA_RSTACK
    # Silence after multiple data packets has no Table 1 signature.
    return SignatureId.OTHER


def match_signature(
    packets: Sequence[Packet],
    window_end: float,
    max_packets: int = 10,
    inactivity_seconds: float = INACTIVITY_SECONDS,
    reorder: bool = True,
) -> SignatureMatch:
    """Classify one connection's inbound packets.

    ``window_end`` is when the capture window closed; ``max_packets`` the
    pipeline's truncation limit (needed to interpret trailing silence).
    ``reorder=False`` trusts the stored order (ablation use).
    """
    ordered = reconstruct_order(packets) if reorder else list(packets)
    if not ordered:
        return SignatureMatch(
            signature=SignatureId.OTHER,
            stage=Stage.NONE,
            possibly_tampered=False,
            ordered=[],
            rst_packets=[],
            n_data_segments=0,
            saw_fin=False,
            silence_gap=0.0,
        )

    rsts = [p for p in ordered if p.flags.is_rst]
    saw_fin = any(p.flags.is_fin and not p.flags.is_rst for p in ordered)
    gap = _silence_gap(ordered, window_end, max_packets)
    silent = gap >= inactivity_seconds

    possibly_tampered = bool(rsts) or (silent and not saw_fin)

    non_rst = [p for p in ordered if not p.flags.is_rst]
    data_segments = _distinct_data_segments(non_rst)
    pure_acks = [
        p
        for p in non_rst
        if p.flags.is_ack and not p.has_payload and not p.flags.is_syn and not p.flags.is_fin
    ]
    syns = [p for p in non_rst if p.flags.is_syn]

    # Stage determination over the pre-event packets.  Post-PSH requires
    # the event to follow the first data segment *immediately*: any
    # non-RST packet after it (another segment, an ACK of the response,
    # a FIN) pushes the connection into the post-data group, except bare
    # retransmissions of the trigger segment itself.
    if data_segments:
        first_data = data_segments[0]
        first_index = next(
            i for i, p in enumerate(non_rst) if p.has_payload and p.seq == first_data.seq
        )
        extras = [
            p
            for p in non_rst[first_index + 1 :]
            if not (p.has_payload and p.seq == first_data.seq)
        ]
        stage = Stage.POST_PSH if not extras else Stage.POST_DATA
    elif pure_acks:
        # The paper's residue example: a SYN and *two* ACKs without data
        # does not fall cleanly into a stage.
        stage = Stage.POST_ACK if len(pure_acks) == 1 and syns else Stage.NONE
    elif syns:
        stage = Stage.POST_SYN
    else:
        stage = Stage.NONE

    if not possibly_tampered:
        signature = SignatureId.NOT_TAMPERING
    elif saw_fin and not rsts:
        # FIN handshake present: gaps alone do not make it tampering.
        signature = SignatureId.NOT_TAMPERING
        possibly_tampered = False
    elif saw_fin and rsts:
        # RST alongside a FIN handshake.  Necessarily post-data (the FIN
        # itself is a packet after the first data segment); the paper's
        # post-data signatures do not exclude FIN-bearing connections --
        # keyword-triggered devices and abortive client closes are
        # indistinguishable there.  Elsewhere it matches nothing.
        if stage == Stage.POST_DATA:
            pure, withack = _split_rsts(rsts)
            signature = _match_post_data(pure, withack)
        else:
            signature = SignatureId.OTHER
    elif stage == Stage.NONE:
        signature = SignatureId.OTHER
    else:
        pure, withack = _split_rsts(rsts)
        if stage == Stage.POST_SYN:
            signature = _match_post_syn(pure, withack, silent)
        elif stage == Stage.POST_ACK:
            signature = _match_post_ack(pure, withack, silent)
        elif stage == Stage.POST_PSH:
            signature = _match_post_psh(pure, withack, silent)
        else:
            signature = _match_post_data(pure, withack)

    return SignatureMatch(
        signature=signature,
        stage=stage if signature.is_tampering or stage != Stage.NONE else Stage.NONE,
        possibly_tampered=possibly_tampered,
        ordered=list(ordered),
        rst_packets=rsts,
        n_data_segments=len(data_segments),
        saw_fin=saw_fin,
        silence_gap=gap,
    )
