"""Middlebox fingerprinting from tear-down header personalities.

Weaver, Sommer and Paxson's NDSS'09 study (the paper's closest prior
work, §2.3) went one step past detection: the *combination* of a
signature with the forged packets' header quirks identifies the device
that produced it.  This module implements that step over the pipeline's
samples:

* :func:`fingerprint_sample` reduces one tampered connection to a
  :class:`Fingerprint` -- the matched signature plus the injected RSTs'
  TTL behaviour (mimicking / fixed-distinct / randomised) and IP-ID
  behaviour (copying / counter-like / randomised).
* :class:`FingerprintIndex` clusters a study by fingerprint and labels
  clusters against a small catalogue of known device behaviours,
  exactly how operators turn signature matches into "that is a
  GFW-style injector on this path".

Everything here reads only observable fields; ground-truth vendor labels
are used by tests and the benchmark to score cluster purity.
"""

from __future__ import annotations

import dataclasses
import enum
from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.cdn.collector import ConnectionSample
from repro.core.classifier import ClassificationResult
from repro.core.model import SignatureId, Stage
from repro.core.sequence import reconstruct_order

__all__ = [
    "TtlBehaviour",
    "IpIdBehaviour",
    "Fingerprint",
    "fingerprint_sample",
    "FingerprintCluster",
    "FingerprintIndex",
]


class TtlBehaviour(enum.Enum):
    """How the tear-down packets' TTLs relate to the client's."""

    MIMIC = "mimic"  # within ±2 of the client's packets
    FIXED_DISTINCT = "fixed-distinct"  # far from the client, consistent
    RANDOMISED = "randomised"  # spread out across the burst
    UNKNOWN = "unknown"  # no baseline or no RSTs


class IpIdBehaviour(enum.Enum):
    """How the tear-down packets' IP-IDs relate to the client's."""

    CONSISTENT = "consistent"  # within ±2: copying or same stack
    COUNTER = "counter"  # far from client, sequential among themselves
    RANDOMISED = "randomised"  # far from client, scattered
    UNKNOWN = "unknown"  # IPv6, or no RSTs


@dataclasses.dataclass(frozen=True)
class Fingerprint:
    """The observable personality of one tampering event."""

    signature: SignatureId
    ttl: TtlBehaviour
    ip_id: IpIdBehaviour

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.signature.value, self.ttl.value, self.ip_id.value)

    def describe(self) -> str:
        return f"{self.signature.display} ttl={self.ttl.value} ipid={self.ip_id.value}"


#: Catalogue of known device behaviours (the Weaver-style lookup table).
KNOWN_DEVICES: Tuple[Tuple[str, SignatureId, Optional[TtlBehaviour], Optional[IpIdBehaviour]], ...] = (
    ("GFW-style burst injector", SignatureId.PSH_RST_RSTACK, TtlBehaviour.FIXED_DISTINCT, None),
    ("GFW-style HTTPS middlebox", SignatureId.PSH_RSTACK_RSTACK, TtlBehaviour.FIXED_DISTINCT, None),
    ("zero-ack RST pair injector", SignatureId.PSH_RST_RST0, None, None),
    ("ACK-guessing injector (randomised TTL)", SignatureId.PSH_RST_NEQ_RST, TtlBehaviour.RANDOMISED, None),
    ("repeated-RST injector", SignatureId.PSH_RST_EQ_RST, None, None),
    ("post-handshake RST dropper", SignatureId.ACK_RST, None, None),
    ("post-handshake RST+ACK injector", SignatureId.ACK_RSTACK, None, None),
    ("mid-handshake RST/RST+ACK injector", SignatureId.SYN_RST_RSTACK, None, None),
    ("stealthy in-path firewall (header mimic)", SignatureId.PSH_RSTACK, TtlBehaviour.MIMIC, IpIdBehaviour.CONSISTENT),
    # Not middleboxes at all: packets from the client's own stack mimic
    # the client perfectly (same TTL, same IP-ID counter) -- scanners,
    # Happy-Eyeballs cancellations, abortive closes.
    ("client-generated RST (scanner / Happy Eyeballs)", SignatureId.SYN_RST, TtlBehaviour.MIMIC, IpIdBehaviour.CONSISTENT),
    ("client-generated RST (abortive close)", SignatureId.DATA_RST, TtlBehaviour.MIMIC, IpIdBehaviour.CONSISTENT),
)


def _ttl_behaviour(client_ttls: Sequence[int], rst_ttls: Sequence[int]) -> TtlBehaviour:
    if not client_ttls or not rst_ttls:
        return TtlBehaviour.UNKNOWN
    baseline = max(set(client_ttls), key=client_ttls.count)
    deltas = [abs(t - baseline) for t in rst_ttls]
    spread = max(rst_ttls) - min(rst_ttls)
    if len(rst_ttls) >= 2 and spread > 16:
        return TtlBehaviour.RANDOMISED
    if max(deltas) <= 2:
        return TtlBehaviour.MIMIC
    return TtlBehaviour.FIXED_DISTINCT


def _ipid_behaviour(sample_version: int, client_ids: Sequence[int], rst_ids: Sequence[int]) -> IpIdBehaviour:
    if sample_version != 4 or not client_ids or not rst_ids:
        return IpIdBehaviour.UNKNOWN
    nearest = min(abs(r - c) for r in rst_ids for c in client_ids)
    if nearest <= 2:
        return IpIdBehaviour.CONSISTENT
    if len(rst_ids) >= 2:
        gaps = [abs(b - a) for a, b in zip(sorted(rst_ids), sorted(rst_ids)[1:])]
        if max(gaps) <= 3:
            return IpIdBehaviour.COUNTER
        return IpIdBehaviour.RANDOMISED
    return IpIdBehaviour.RANDOMISED


def fingerprint_sample(
    sample: ConnectionSample, result: ClassificationResult
) -> Optional[Fingerprint]:
    """Fingerprint one classified connection; None if not RST-tampering."""
    if not result.is_tampering:
        return None
    ordered = reconstruct_order(sample.packets)
    rsts = [p for p in ordered if p.flags.is_rst]
    if not rsts:
        return None  # drop signatures carry no forged headers to read
    non_rst = [p for p in ordered if not p.flags.is_rst]
    return Fingerprint(
        signature=result.signature,
        ttl=_ttl_behaviour([p.ttl for p in non_rst], [p.ttl for p in rsts]),
        ip_id=_ipid_behaviour(sample.ip_version, [p.ip_id for p in non_rst], [p.ip_id for p in rsts]),
    )


@dataclasses.dataclass
class FingerprintCluster:
    """All events sharing one fingerprint."""

    fingerprint: Fingerprint
    count: int
    countries: Counter
    vendors: Counter  # ground truth, evaluation only

    @property
    def label(self) -> str:
        """Best-effort device label from the catalogue."""
        for name, signature, ttl, ip_id in KNOWN_DEVICES:
            if signature != self.fingerprint.signature:
                continue
            if ttl is not None and ttl != self.fingerprint.ttl:
                continue
            if ip_id is not None and ip_id != self.fingerprint.ip_id:
                continue
            return name
        return "unrecognised device"

    @property
    def purity(self) -> float:
        """Share of the cluster from its most common true vendor."""
        total = sum(self.vendors.values())
        if not total:
            return 0.0
        return self.vendors.most_common(1)[0][1] / total

    @property
    def dominant_vendor(self) -> Optional[str]:
        return self.vendors.most_common(1)[0][0] if self.vendors else None


class FingerprintIndex:
    """Cluster a study's tampering events by fingerprint."""

    def __init__(self) -> None:
        self._counts: Dict[Tuple[str, str, str], int] = Counter()
        self._countries: Dict[Tuple[str, str, str], Counter] = defaultdict(Counter)
        self._vendors: Dict[Tuple[str, str, str], Counter] = defaultdict(Counter)
        self._fingerprints: Dict[Tuple[str, str, str], Fingerprint] = {}

    def add(
        self,
        fingerprint: Fingerprint,
        country: str = "??",
        truth_vendor: Optional[str] = None,
    ) -> None:
        key = fingerprint.key
        self._counts[key] += 1
        self._countries[key][country] += 1
        if truth_vendor:
            self._vendors[key][truth_vendor] += 1
        self._fingerprints[key] = fingerprint

    @classmethod
    def build(
        cls,
        samples: Iterable[ConnectionSample],
        results: Iterable[ClassificationResult],
        geodb=None,
    ) -> "FingerprintIndex":
        index = cls()
        for sample, result in zip(samples, results):
            fingerprint = fingerprint_sample(sample, result)
            if fingerprint is None:
                continue
            country = "??"
            if geodb is not None:
                record = geodb.lookup_or_none(sample.client_ip)
                country = record.country if record else "??"
            index.add(fingerprint, country=country, truth_vendor=sample.truth_vendor)
        return index

    def clusters(self, min_count: int = 1) -> List[FingerprintCluster]:
        """All clusters with at least ``min_count`` events, largest first."""
        out = [
            FingerprintCluster(
                fingerprint=self._fingerprints[key],
                count=count,
                countries=self._countries[key],
                vendors=self._vendors[key],
            )
            for key, count in self._counts.items()
            if count >= min_count
        ]
        out.sort(key=lambda c: -c.count)
        return out

    def __len__(self) -> int:
        return len(self._counts)
