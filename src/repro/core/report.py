"""Plain-text rendering of tables, CDFs and timeseries.

Every benchmark prints its artifact through these helpers so the rows the
paper reports can be compared at a glance in terminal output and in
``bench_output.txt``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "render_table",
    "render_cdf",
    "render_timeseries",
    "render_matrix",
    "percentile",
    "cdf_points",
]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render an ASCII table with aligned columns."""
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    # Rows may be wider than the header line; pad the header out with
    # empty columns instead of raising IndexError in line().
    n_cols = max([len(headers)] + [len(r) for r in str_rows])
    headers = list(headers) + [""] * (n_cols - len(headers))
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
        parts.append("=" * max(len(title), 8))
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0-100) of ``values`` (linear interpolation)."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    pos = (len(ordered) - 1) * q / 100.0
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return float(ordered[lo])
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def cdf_points(values: Sequence[float], n_points: int = 11) -> List[Tuple[float, float]]:
    """(value, cumulative fraction) at evenly spaced quantiles."""
    if n_points < 1:
        raise ValueError("n_points must be >= 1")
    if not values:
        return []
    if n_points == 1:
        # A single point degenerates to the full distribution's maximum.
        return [(percentile(values, 100.0), 1.0)]
    return [
        (percentile(values, 100.0 * i / (n_points - 1)), i / (n_points - 1))
        for i in range(n_points)
    ]


def render_cdf(
    series: Mapping[str, Sequence[float]],
    title: Optional[str] = None,
    quantiles: Sequence[float] = (10, 25, 50, 75, 90, 95, 99, 100),
    float_format: str = "{:.0f}",
) -> str:
    """Render one CDF per named series as a quantile table."""
    headers = ["series", "n"] + [f"p{int(q)}" for q in quantiles]
    rows = []
    for name, values in series.items():
        if not values:
            rows.append([name, 0] + ["-"] * len(quantiles))
            continue
        rows.append(
            [name, len(values)]
            + [float_format.format(percentile(list(values), q)) for q in quantiles]
        )
    return render_table(headers, rows, title=title)


def render_timeseries(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    title: Optional[str] = None,
    max_points: int = 14,
    t0: Optional[float] = None,
    time_unit: float = 86400.0,
    unit_label: str = "day",
) -> str:
    """Render named (time, value) series, downsampled to ``max_points``."""
    headers = ["series"] + []
    # Determine common time axis from the union of points.
    all_times = sorted({t for pts in series.values() for t, _ in pts})
    if not all_times:
        return render_table(["series"], [[name] for name in series], title=title)
    base = t0 if t0 is not None else all_times[0]
    # Downsample to at most max_points columns, always keeping the final
    # bucket: floor-division steps could both overshoot max_points and
    # silently drop the newest bucket -- exactly where a live event lands.
    if len(all_times) <= max_points:
        shown_times = list(all_times)
    else:
        step = math.ceil(len(all_times) / max_points)
        shown_times = list(all_times[::step])
        if shown_times[-1] != all_times[-1]:
            if len(shown_times) < max_points:
                shown_times.append(all_times[-1])
            else:
                shown_times[-1] = all_times[-1]
    headers = ["series"] + [f"{unit_label} {((t - base) / time_unit):.1f}" for t in shown_times]
    rows = []
    for name, pts in series.items():
        lookup = dict(pts)
        rows.append([name] + [
            ("{:.1f}".format(lookup[t]) if t in lookup else "-") for t in shown_times
        ])
    return render_table(headers, rows, title=title)


def render_matrix(
    matrix: Mapping[Tuple[str, str], float],
    title: Optional[str] = None,
    normalize_rows: bool = True,
    float_format: str = "{:.2f}",
) -> str:
    """Render a (row label, column label) → value mapping as a grid."""
    rows_labels = sorted({r for r, _ in matrix})
    col_labels = sorted({c for _, c in matrix})
    table_rows = []
    for r in rows_labels:
        values = [matrix.get((r, c), 0.0) for c in col_labels]
        total = sum(values)
        if normalize_rows and total > 0:
            values = [v / total for v in values]
        table_rows.append([r] + list(values))
    return render_table(["first \\ next"] + col_labels, table_rows, title=title, float_format=float_format)
