"""The paper's contribution: passive tampering detection and analysis.

* :mod:`repro.core.model` -- the 19 tampering signatures of Table 1 and
  the connection-stage taxonomy.
* :mod:`repro.core.sequence` -- packet-order reconstruction from headers
  (the dataset's timestamps have 1-second granularity).
* :mod:`repro.core.signatures` -- the stage split and per-stage signature
  decision logic.
* :mod:`repro.core.classifier` -- the end-to-end pipeline from a
  :class:`~repro.cdn.collector.ConnectionSample` to a classification.
* :mod:`repro.core.evidence` -- IP-ID/TTL injection evidence (Figures
  2-3) and scanner heuristics (§4.2).
* :mod:`repro.core.aggregate` -- the groupings behind Figures 1, 4-10 and
  Table 2.
* :mod:`repro.core.testlists` -- test-list coverage analysis (Table 3).
* :mod:`repro.core.report` -- plain-text rendering of every artifact.
"""

from repro.core.model import SignatureId, Stage, SIGNATURES, signature_info
from repro.core.sequence import reconstruct_order
from repro.core.signatures import SignatureMatch, match_signature
from repro.core.classifier import ClassificationResult, ClassifierConfig, TamperingClassifier
from repro.core.evidence import (
    EvidenceSummary,
    evidence_for_sample,
    looks_like_scanner,
    looks_like_zmap,
    max_ipid_delta,
    max_ttl_delta,
)
from repro.core.aggregate import AnalysisDataset, AnalyzedConnection
from repro.core.fingerprint import (
    Fingerprint,
    FingerprintCluster,
    FingerprintIndex,
    fingerprint_sample,
)
from repro.core.sharing import RadarRecord, build_radar_export, write_radar_json
from repro.core.stats import Changepoint, detect_changepoints, wilson_interval
from repro.core.testlists import TestList, coverage_table, registrable_domain
from repro.core.validation import ConfusionSummary, ValidationReport, score_dataset

__all__ = [
    "SignatureId",
    "Stage",
    "SIGNATURES",
    "signature_info",
    "reconstruct_order",
    "SignatureMatch",
    "match_signature",
    "TamperingClassifier",
    "ClassifierConfig",
    "ClassificationResult",
    "EvidenceSummary",
    "evidence_for_sample",
    "max_ipid_delta",
    "max_ttl_delta",
    "looks_like_scanner",
    "looks_like_zmap",
    "AnalyzedConnection",
    "AnalysisDataset",
    "TestList",
    "registrable_domain",
    "coverage_table",
    "RadarRecord",
    "build_radar_export",
    "write_radar_json",
    "ConfusionSummary",
    "ValidationReport",
    "score_dataset",
    "Fingerprint",
    "FingerprintCluster",
    "FingerprintIndex",
    "fingerprint_sample",
    "wilson_interval",
    "detect_changepoints",
    "Changepoint",
]
