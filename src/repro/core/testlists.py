"""Test-list coverage analysis (the paper's Table 3).

Active censorship measurement depends on *test lists* -- Tranco and
Majestic popularity rankings, and the curated Citizen Lab and GreatFire
lists.  §5.5 asks: of the domains our passive pipeline observed being
tampered with, what fraction would an active scanner using list X have
tested?  Two matching modes are evaluated:

* **eTLD+1 exact** -- the tampered domain's registrable domain appears in
  the list (also reduced to eTLD+1).
* **substring** -- the tampered domain is a substring of some list entry
  (or vice versa), the generous interpretation motivated by censors'
  over-blocking of substrings.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

__all__ = ["registrable_domain", "TestList", "ListCoverage", "coverage_table", "union_list"]

#: Multi-label public suffixes the registrable-domain logic understands.
#: (A small curated set is plenty: the synthetic universe only mints
#: domains under these and the single-label TLDs.)
_MULTI_LABEL_SUFFIXES: FrozenSet[str] = frozenset(
    {
        "co.uk", "org.uk", "ac.uk",
        "com.cn", "net.cn", "org.cn",
        "com.br", "com.mx", "com.tr", "com.au",
        "co.kr", "co.jp", "co.in", "co.ir",
        "com.pk", "com.bd", "com.eg", "com.sa", "com.ua",
    }
)


def registrable_domain(domain: str) -> str:
    """Reduce ``domain`` to its eTLD+1 (registrable domain).

    ``www.news.example.co.uk`` → ``example.co.uk``;
    ``cdn.example.com`` → ``example.com``; bare TLDs return unchanged.
    """
    name = domain.lower().strip(".")
    labels = name.split(".")
    if len(labels) <= 2:
        return name
    last_two = ".".join(labels[-2:])
    if last_two in _MULTI_LABEL_SUFFIXES:
        return ".".join(labels[-3:])
    return last_two


@dataclasses.dataclass(frozen=True)
class TestList:
    """One named test list (entries stored both raw and as eTLD+1)."""

    #: Not a pytest test class, despite the domain-standard name.
    __test__ = False

    name: str
    entries: FrozenSet[str]
    etld1: FrozenSet[str]

    @classmethod
    def from_domains(cls, name: str, domains: Iterable[str]) -> "TestList":
        entries = frozenset(d.lower().strip(".") for d in domains)
        return cls(
            name=name,
            entries=entries,
            etld1=frozenset(registrable_domain(d) for d in entries),
        )

    def __len__(self) -> int:
        return len(self.entries)

    def contains_exact(self, domain: str) -> bool:
        """eTLD+1 exact containment."""
        return registrable_domain(domain) in self.etld1

    def contains_substring(self, domain: str) -> bool:
        """Generous matching: substring relation in either direction.

        A tampered domain counts as covered if its registrable domain is
        a substring of some entry or some entry is a substring of it.
        """
        target = registrable_domain(domain)
        if target in self.etld1:
            return True
        return any(target in entry or entry in target for entry in self.etld1)


def union_list(name: str, lists: Sequence[TestList]) -> TestList:
    """The union of several test lists as a new list."""
    entries: Set[str] = set()
    for lst in lists:
        entries |= lst.entries
    return TestList.from_domains(name, entries)


@dataclasses.dataclass
class ListCoverage:
    """Coverage of one list over one region's tampered domains."""

    list_name: str
    region: str
    n_tampered: int
    n_covered_exact: int
    n_covered_substring: int

    @property
    def pct_exact(self) -> float:
        return 100.0 * self.n_covered_exact / self.n_tampered if self.n_tampered else 0.0

    @property
    def pct_substring(self) -> float:
        return 100.0 * self.n_covered_substring / self.n_tampered if self.n_tampered else 0.0


def coverage_table(
    tampered_by_region: Mapping[str, Set[str]],
    lists: Sequence[TestList],
) -> Dict[Tuple[str, str], ListCoverage]:
    """Table 3: coverage of every list over every region.

    ``tampered_by_region`` maps region label (e.g. 'Global', 'CN') to the
    set of tampered domains observed from it.  Returns a mapping keyed by
    (list name, region).
    """
    out: Dict[Tuple[str, str], ListCoverage] = {}
    for region, tampered in tampered_by_region.items():
        for lst in lists:
            exact = sum(1 for d in tampered if lst.contains_exact(d))
            substr = sum(1 for d in tampered if lst.contains_substring(d))
            out[(lst.name, region)] = ListCoverage(
                list_name=lst.name,
                region=region,
                n_tampered=len(tampered),
                n_covered_exact=exact,
                n_covered_substring=substr,
            )
    return out
