"""Canonical feature keys: the classifier's memoization equivalence class.

Sampled traffic is massively repetitive -- at 1-second timestamp
granularity, most connections are one of a few hundred shapes (SYN,
handshake ACK, one request segment, a couple of response ACKs, then a
tear-down or silence).  :func:`feature_key` maps a sample's packets to a
hashable key such that **two samples with the same key are guaranteed to
receive the same signature decision** from
:func:`repro.core.signatures.match_signature` (same signature, stage,
``possibly_tampered``, ``silence_gap`` and ``n_data_segments``), so the
work can be shared through a bounded LRU memo.

What the decision actually reads, and how the key canonicalises it:

* **Timestamps** only matter relatively: ordering uses them as sort
  leaders and the silence rule reads gaps.  The key stores deltas from
  the earliest packet, so wall-clock position never splits a class.
* **Flag bits** are kept verbatim (the full byte is a sort tie-breaker
  and every stage predicate reads individual bits).
* **Sequence numbers** matter for numeric order (within a sort bucket),
  for retransmission dedup and for trigger-segment identity -- never for
  their absolute value.  They are renumbered to their rank among the
  distinct values present, which preserves every ``<``/``==`` the
  matcher can evaluate while collapsing ISN randomisation.
* **Acknowledgment numbers** additionally have one magic value: forged
  RSTs with ``ack == 0`` drive the ⟨PSH+ACK → RST; RST(0)⟩ decision, and
  SYN/RST packets occupy the ack sort slot with a literal ``0``.  Ranks
  therefore start at 1 and **0 maps to 0**, keeping zero-ness and all
  order relations intact.
* **Payload lengths** matter as presence (data vs bare ACK) and as a
  sort tie-breaker; like acks they are ranked with 0 reserved for empty.
  Payload *content* is deliberately excluded -- protocol/domain
  extraction is per-sample and never memoized.
* **Truncation and window slack.**  The trailing silence term
  ``window_end - last_ts`` only exists when the capture was not
  truncated at ``max_packets``; the key stores the relative window slack
  in that case and drops it entirely for full buffers, so full buffers
  with different (ignored) window ends share a class.
* **Stored order** is part of the key only when ``reorder=False``:
  with reordering on, ``reconstruct_order`` makes the decision invariant
  to the stored permutation (ties that survive its total order are
  observationally identical packets), so the key sorts its per-packet
  tuples into a canonical permutation and shuffled captures of the same
  connection hit the same memo line.

``ip_id`` is excluded on purpose: it appears only as the *final* sort
tie-breaker in :func:`~repro.core.sequence.semantic_rank`, i.e. it can
only swap packets that agree on timestamp, flags, seq, ack and payload
length -- packets the decision logic cannot tell apart.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.netstack.packet import Packet

__all__ = ["feature_key", "FeatureKey"]

#: The key type: per-packet canonical tuples plus the window-slack term.
FeatureKey = Tuple[object, ...]


def _rank_with_zero(values: Sequence[int]) -> Dict[int, int]:
    """Order-preserving renumbering that keeps 0 fixed.

    Non-zero distinct values map to 1..k in numeric order; 0 maps to 0.
    This preserves every comparison against the literal 0 the sort keys
    and the RST ``ack == 0`` predicate use.
    """
    distinct = sorted(set(values) - {0})
    ranks = {value: index + 1 for index, value in enumerate(distinct)}
    ranks[0] = 0
    return ranks


def feature_key(
    packets: Sequence[Packet],
    window_end: float,
    max_packets: int,
    reorder: bool,
) -> FeatureKey:
    """The memo key for one sample under a fixed classifier config.

    ``max_packets`` and the inactivity threshold are classifier-config
    constants; callers must keep one memo per config (the
    :class:`~repro.core.classifier.TamperingClassifier` cache is
    per-instance, which guarantees this).
    """
    if not packets:
        return ("empty",)

    t0 = min(p.ts for p in packets)
    seqs = [p.seq for p in packets]
    acks = [p.ack for p in packets]
    lens = [len(p.payload) for p in packets]
    seq_rank = _rank_with_zero(seqs)
    ack_rank = _rank_with_zero(acks)
    len_rank = _rank_with_zero(lens)

    rows = [
        (
            p.ts - t0,
            int(p.flags),
            len_rank[plen],
            seq_rank[seq],
            ack_rank[ack],
        )
        for p, seq, ack, plen in zip(packets, seqs, acks, lens)
    ]
    if reorder:
        # Reconstruction makes the decision invariant to stored order;
        # canonicalise so shuffled captures share a memo line.
        rows.sort()

    if len(packets) < max_packets:
        slack: object = window_end - t0
    else:
        # Full buffer: the trailing gap is never consulted.
        slack = None
    return (slack, tuple(rows))
