"""Privacy-preserving aggregate export (the paper's data-sharing plan).

The authors commit to publishing *aggregated* tampering data on
Cloudflare Radar: per-country, per-day signature shares -- never raw
client IPs or customer domains (§1 "Data sharing", §3.3).  This module
implements that export: it reduces an :class:`~repro.core.aggregate.AnalysisDataset`
to JSON-safe aggregate records and enforces two privacy constraints:

* **minimum cell size** -- any (country, day, signature) cell with fewer
  than ``min_cell`` connections is suppressed, so no small population is
  identifiable;
* **no identifiers** -- records carry country codes, day indices,
  signature names and percentages only; client addresses, ASNs below the
  publication floor, and domain names never appear.
"""

from __future__ import annotations

import dataclasses
import json
import math
from collections import Counter, defaultdict
from typing import Dict, IO, Iterable, List, Optional, Tuple, Union

from repro.core.aggregate import AnalysisDataset
from repro.core.model import SignatureId

__all__ = ["RadarRecord", "build_radar_export", "write_radar_json", "DEFAULT_MIN_CELL"]

#: Minimum connections a published cell must aggregate over.
DEFAULT_MIN_CELL = 20

_DAY = 86400.0


@dataclasses.dataclass(frozen=True)
class RadarRecord:
    """One published aggregate: a (country, day, signature) cell."""

    country: str
    day: int  # days since the export epoch (first day in the dataset)
    signature: str  # display name, or "any" for the tampering total
    connections: int  # denominator (all connections in the cell scope)
    matches: int
    share_pct: float

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def build_radar_export(
    dataset: AnalysisDataset,
    min_cell: int = DEFAULT_MIN_CELL,
    epoch: Optional[float] = None,
) -> List[RadarRecord]:
    """Reduce a dataset to publishable aggregate records.

    Cells whose *denominator* (total connections from the country on the
    day) is below ``min_cell`` are suppressed entirely; within published
    cells, zero-match signatures are omitted for compactness.  A per-cell
    ``signature="any"`` record carries the overall tampering share.
    """
    if min_cell < 1:
        raise ValueError("min_cell must be >= 1")
    connections = list(dataset)
    if not connections:
        return []
    if epoch is None:
        epoch = min(c.ts for c in connections)

    totals: Counter = Counter()
    matches: Dict[Tuple[str, int], Counter] = defaultdict(Counter)
    for conn in connections:
        day = int(math.floor((conn.ts - epoch) / _DAY))
        key = (conn.country, day)
        totals[key] += 1
        if conn.tampered:
            matches[key][conn.signature] += 1

    records: List[RadarRecord] = []
    for (country, day), denom in sorted(totals.items()):
        if denom < min_cell:
            continue  # privacy floor: suppress the whole cell
        cell = matches.get((country, day), Counter())
        total_matched = sum(cell.values())
        records.append(
            RadarRecord(
                country=country,
                day=day,
                signature="any",
                connections=denom,
                matches=total_matched,
                share_pct=100.0 * total_matched / denom,
            )
        )
        for signature, count in sorted(cell.items(), key=lambda kv: kv[0].value):
            records.append(
                RadarRecord(
                    country=country,
                    day=day,
                    signature=signature.display,
                    connections=denom,
                    matches=count,
                    share_pct=100.0 * count / denom,
                )
            )
    return records


def write_radar_json(
    path_or_file: Union[str, IO[str]],
    records: Iterable[RadarRecord],
    indent: Optional[int] = None,
) -> int:
    """Write records as a JSON array; returns the record count."""
    records = list(records)
    owned = isinstance(path_or_file, str)
    fh = open(path_or_file, "w") if owned else path_or_file
    try:
        json.dump([r.to_dict() for r in records], fh, indent=indent)
        fh.write("\n")
    finally:
        if owned:
            fh.close()
    return len(records)
