"""Packet-order reconstruction.

The collection pipeline timestamps packets at 1-second granularity, so
packets within one second may be logged in arbitrary order (paper §3.2).
The paper notes order can "typically [be reconstructed] with packet
headers and sequence numbers (e.g., SYNs are followed by SYN+ACKs)";
this module implements that reconstruction for the inbound-only view.

Within one timestamp bucket, non-RST packets are ordered by:

1. SYNs first (a connection starts with its SYN; duplicate SYNs keep
   their relative order -- they are retransmissions of the same segment).
2. The acknowledgment number.  A client's ACK field is monotone in what
   it has seen from the server, so the handshake-completing ACK (ack =
   server ISN + 1) precedes the request data (same ack), which precedes
   the ACKs of the response (growing acks), which precede the FIN.
3. Ties break by semantic class (bare ACK before data before FIN) and
   then by sequence number (segments of one write, in order).

Tear-down packets (RST / RST+ACK) sort after everything else in their
bucket: a tampering event follows the traffic that triggered it, and
forged ACK fields (zero, guessed) carry no ordering information.

Across buckets, bucket time order is preserved.  The ranking is a
heuristic, exactly as in the paper; the ablation bench measures how often
it changes classification versus oracle arrival order.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.netstack.packet import Packet

__all__ = ["reconstruct_order", "semantic_rank"]

#: Ordering classes for tie-breaking at equal ack numbers.
_CLASS_SYN = 0
_CLASS_ACK = 1
_CLASS_DATA = 2
_CLASS_FIN = 3
_CLASS_RST = 4


def semantic_rank(pkt: Packet) -> Tuple[int, int, int, int, int, int, int]:
    """Rank of one packet within its timestamp bucket; lower sorts earlier.

    Returns ``(rst_group, ack, class, seq, payload_len, flag_bits, ip_id)``.
    The trailing fields are pure tie-breakers: they make the ordering a
    total order over observationally distinct packets, so reconstruction
    is invariant to the arbitrary stored order of a shuffled capture
    (only byte-identical packets remain interchangeable).
    """
    flags = pkt.flags
    tail = (len(pkt.payload), int(flags), pkt.ip_id)
    if flags.is_rst:
        # RSTs last; order multiple RSTs stably by (seq, ack).
        return (1, 0, _CLASS_RST, pkt.seq) + tail
    if flags.is_syn:
        return (0, 0, _CLASS_SYN, pkt.seq) + tail
    if flags.is_fin:
        cls = _CLASS_FIN
    elif pkt.has_payload:
        cls = _CLASS_DATA
    else:
        cls = _CLASS_ACK
    return (0, pkt.ack, cls, pkt.seq) + tail


def reconstruct_order(packets: Sequence[Packet]) -> List[Packet]:
    """Return packets in reconstructed arrival order.

    Stable: packets that compare equal keep their stored order, so the
    function is idempotent and harmless on already-ordered input.

    Fast path: captures that are already stored in reconstructed order
    (ablation runs with shuffling off, pre-sorted replays, re-entrant
    calls on a previous result) are detected by a single monotone scan
    over the rank keys and returned without sorting.
    """
    if len(packets) < 2:
        return list(packets)
    keys = [(p.ts,) + semantic_rank(p) for p in packets]
    if all(keys[i] <= keys[i + 1] for i in range(len(keys) - 1)):
        return list(packets)
    # Sort indices, not (key, packet) pairs: Packet is not orderable and
    # index order preserves the stable-sort contract.
    order = sorted(range(len(packets)), key=keys.__getitem__)
    return [packets[i] for i in order]
