"""Figure 8: signature match rates in Iran during the September 2022
protests.

A 17-day Iran-focused run with escalating blocking after the protests
begin.  Paper observations reproduced in shape: match rates rise
significantly after the onset, the drop/post-handshake family
(⟨SYN; ACK → ∅⟩, ⟨SYN; ACK → RST+ACK⟩, ⟨SYN → RST⟩) dominates, traffic
concentrates on the largest (mobile) networks, and matches peak in the
(late) evening hours.
"""

from repro.core.model import SignatureId, Stage
from repro.core.report import render_timeseries
from repro.workloads.scenarios import SEP_13_2022
from repro.workloads.traffic import local_hour

_DAY = 86400.0
ALL_STAGES = (Stage.POST_SYN, Stage.POST_ACK, Stage.POST_PSH, Stage.POST_DATA)


def test_fig8_iran_protest_timeseries(benchmark, iran_dataset, emit):
    data = iran_dataset.in_countries(["IR"])
    series = benchmark(data.timeseries, _DAY, None, None, ALL_STAGES, True)

    top = dict(sorted(series.items(),
                      key=lambda kv: -max((v for _, v in kv[1]), default=0.0))[:6])
    emit(render_timeseries(top, title="Figure 8: signature match % from Iran (per day)",
                           t0=SEP_13_2022, max_points=9))

    overall = data.timeseries(bucket_seconds=_DAY, stages=ALL_STAGES)["IR"]
    assert len(overall) >= 5
    early = [pct for t, pct in overall[:2]]
    late = [pct for t, pct in overall[3:]]
    assert max(late) > max(early), "blocking must escalate after the protests begin"
    assert max(late) > 25.0, "escalated blocking should be substantial"

    # §5.6 operationalised: a changepoint detector finds the escalation
    # in the daily series without being told when the protests began.
    # (Daily buckets smooth over the diurnal evening surges that would
    # otherwise read as changepoints of their own.)
    from repro.core.stats import detect_changepoints

    changepoints = detect_changepoints(overall, window=2, threshold_sigma=1.5, min_delta=8.0)
    increases = [c for c in changepoints if c.is_increase]
    assert increases, "the escalation must be detectable"
    first = increases[0]
    days_in = (first.ts - SEP_13_2022) / _DAY
    emit(f"changepoint detector: escalation begins ~day {days_in:.1f} "
         f"({first.before_mean:.1f}% → {first.after_mean:.1f}%)")
    assert 0.0 <= days_in <= 5.0

    # Shape: the Iranian drop / post-handshake family dominates matches.
    from collections import Counter

    counts = Counter(c.signature for c in data if c.tampered)
    family = (
        counts[SignatureId.ACK_NONE]
        + counts[SignatureId.ACK_RSTACK]
        + counts[SignatureId.ACK_RSTACK_RSTACK]
        + counts[SignatureId.SYN_NONE]
        + counts[SignatureId.SYN_RST]
    )
    assert family / max(1, sum(counts.values())) > 0.5

    # Shape: the top-2 networks carry most of the tampered connections.
    from collections import Counter as C

    per_asn = C(c.asn for c in data if c.tampered)
    top2 = sum(n for _, n in per_asn.most_common(2))
    assert top2 / max(1, sum(per_asn.values())) > 0.5

    # Shape: evening (18:00-24:00 local) rates exceed morning rates.
    evening, morning = [], []
    for c in data:
        hour = local_hour(c.ts, 3.5)
        bucket = evening if 18.0 <= hour < 24.0 else (morning if 6.0 <= hour < 12.0 else None)
        if bucket is not None:
            bucket.append(1.0 if c.tampered else 0.0)
    if evening and morning:
        assert sum(evening) / len(evening) > sum(morning) / len(morning)
