"""Figure 7: IPv4-vs-IPv6 and TLS-vs-HTTP tampering comparisons.

7(a): per-country Post-ACK/Post-PSH match rate in IPv4 vs IPv6 -- the
paper fits a through-origin regression slope of 0.92 (no systematic
difference between address families).

7(b): per-country Post-PSH match rate for TLS vs HTTP by wire protocol
-- the paper's slope is 0.3 (TLS is tampered more than HTTP overall),
with Turkmenistan as the stand-out exception: >50% of its HTTP requests
match but virtually no TLS.
"""

from repro.core.aggregate import regression_slope
from repro.core.report import render_table

PAPER_SLOPE_IPV = 0.92
PAPER_SLOPE_PROTO = 0.3


def test_fig7a_ipv4_vs_ipv6(benchmark, dataset, emit):
    rates = benchmark(dataset.ip_version_rates, 25)
    points = [(v4, v6) for v4, v6 in rates.values() if v4 > 0 or v6 > 0]
    slope = regression_slope(points)

    rows = [[c, v4, v6] for c, (v4, v6) in sorted(rates.items(), key=lambda kv: -kv[1][0])[:15]]
    emit(render_table(["country", "IPv4 %", "IPv6 %"], rows,
                      title=f"Figure 7(a): tampering by IP version "
                            f"(slope paper={PAPER_SLOPE_IPV}, measured={slope:.2f})"))

    # Shape: near parity between the address families (the paper's 0.92;
    # per-country IPv6 denominators are small, so allow sampling slack).
    assert 0.5 < slope < 1.6, f"IPv4-vs-IPv6 slope {slope:.2f} far from parity"


def test_fig7b_tls_vs_http(benchmark, dataset, emit):
    rates = benchmark(dataset.protocol_post_psh_rates)
    points = [(tls, http) for tls, http in rates.values()]
    slope = regression_slope(points)

    rows = [[c, tls, http] for c, (tls, http) in sorted(rates.items(), key=lambda kv: -kv[1][1])[:15]]
    emit(render_table(["country", "TLS %", "HTTP %"], rows,
                      title=f"Figure 7(b): Post-PSH matches by protocol "
                            f"(slope paper={PAPER_SLOPE_PROTO}, measured={slope:.2f})"))

    # Shape: Turkmenistan is the HTTP-only outlier.
    if "TM" in rates:
        tls_tm, http_tm = rates["TM"]
        assert http_tm > 20.0
        assert tls_tm < http_tm / 4.0

    # Shape: excluding the TM outlier, TLS is tampered at least as much
    # as HTTP in the majority of tampering countries.
    tls_heavier = sum(
        1 for c, (tls, http) in rates.items()
        if c != "TM" and (tls + http) > 2.0 and tls >= http
    )
    comparable = sum(1 for c, (tls, http) in rates.items() if c != "TM" and (tls + http) > 2.0)
    if comparable:
        assert tls_heavier / comparable > 0.5
