"""Shared fixtures for the benchmark harness.

One global two-week study is simulated once per session and shared by
every table/figure benchmark; the Iran case study gets its own run.
Sizes can be scaled with ``REPRO_BENCH_CONNECTIONS`` (default 20,000
sampled connections, mirroring a 1-in-10,000 sample of a much larger
traffic volume).

Each benchmark times its *analysis* step with pytest-benchmark and
prints the regenerated paper artifact (table rows / series / CDF
quantiles) outside the capture so it lands in ``bench_output.txt``.
"""

from __future__ import annotations

import os

import pytest

from repro.core.classifier import TamperingClassifier
from repro.workloads.scenarios import iran_protest_study, two_week_study

BENCH_CONNECTIONS = int(os.environ.get("REPRO_BENCH_CONNECTIONS", "20000"))
IRAN_CONNECTIONS = int(os.environ.get("REPRO_BENCH_IRAN_CONNECTIONS", "6000"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))


@pytest.fixture(scope="session")
def study():
    """The main two-week global study (simulated once per session)."""
    return two_week_study(n_connections=BENCH_CONNECTIONS, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def classifier():
    return TamperingClassifier()


@pytest.fixture(scope="session")
def results(study, classifier):
    """Classified samples (computed once)."""
    return classifier.classify_all(study.samples)


@pytest.fixture(scope="session")
def dataset(study, results):
    from repro.core.aggregate import AnalysisDataset

    return AnalysisDataset.from_results(results, study.world.geo, study.timestamps)


@pytest.fixture(scope="session")
def iran_study():
    """The 17-day Iran protest case study."""
    return iran_protest_study(n_connections=IRAN_CONNECTIONS, seed=13)


@pytest.fixture(scope="session")
def iran_dataset(iran_study):
    return iran_study.analyze()


@pytest.fixture
def emit(capsys):
    """Print a report block so it is visible in benchmark output."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print("\n" + text + "\n")

    return _emit
