"""The DNS blind spot: censorship the passive pipeline cannot see.

The paper scopes its methodology to tampering at or above the TCP layer
(§2.1): a censor that poisons DNS stops clients *before* they reach the
CDN, so those events never enter the sample.  This benchmark moves a
censored country's enforcement from TCP tear-downs to DNS poisoning and
measures what the passive pipeline reports in each configuration:

* TCP-only enforcement → the pipeline sees the blocking;
* DNS-first enforcement → the country's measured tampering rate drops
  toward the baseline while its users remain just as blocked.
"""

from repro.core.classifier import TamperingClassifier
from repro.core.aggregate import AnalysisDataset
from repro.core.report import render_table
from repro.dns.pipeline import filter_specs_through_dns
from repro.dns.resolver import DnsCensor, DnsTamperMode
from repro.middlebox.policy import BlockPolicy, DomainRule
from repro.workloads.profiles import profile_for
from repro.workloads.traffic import TrafficGenerator
from repro.workloads.world import World

N_CONNECTIONS = 2500
_DAY = 86400.0


def _run(world, specs):
    classifier = TamperingClassifier()
    samples = []
    timestamps = {}
    for spec in specs:
        sample = world.simulate_connection(spec)
        if sample is not None:
            samples.append(sample)
            timestamps[sample.conn_id] = spec.ts
    results = classifier.classify_all(samples)
    return AnalysisDataset.from_results(results, world.geo, timestamps)


def test_dns_blindspot(benchmark, emit):
    world = World(profiles=[profile_for("CN"), profile_for("DE")], seed=23, n_domains=1200)
    generator = TrafficGenerator(world, seed=23)
    specs = generator.specs(N_CONNECTIONS, start_ts=0.0, duration=7 * _DAY)

    censor = DnsCensor(
        BlockPolicy([DomainRule(sorted(world.blocklist("CN")))]),
        mode=DnsTamperMode.NXDOMAIN,
        name="cn-dns",
        seed=23,
    )

    def run_both():
        # Configuration A: all enforcement at the TCP layer (the default).
        tcp_view = _run(world, specs)
        # Configuration B: DNS poisoning fires first; survivors still
        # cross the same TCP middleboxes (defence in depth), but blocked
        # demand largely never reaches them.
        dns_result = filter_specs_through_dns(world, specs, {"CN": [censor]}, seed=23)
        dns_view = _run(world, dns_result.surviving)
        return tcp_view, dns_view, dns_result

    tcp_view, dns_view, dns_result = benchmark.pedantic(run_both, rounds=1, iterations=1)

    tcp_rate = tcp_view.country_tampering_rate().get("CN", 0.0)
    dns_rate = dns_view.country_tampering_rate().get("CN", 0.0)
    cn_specs = [s for s in specs if s.country == "CN"]
    blocked_share = 100.0 * dns_result.blocked_count / max(1, len(cn_specs))

    emit(render_table(
        ["configuration", "CN tampering % (passive view)", "CN users blocked before TCP"],
        [
            ["TCP tear-downs (paper's subjects)", tcp_rate, "0.0%"],
            ["DNS poisoning first", dns_rate, f"{blocked_share:.1f}%"],
        ],
        title="DNS blind spot: same censorship intent, different pipeline visibility",
    ))
    emit(f"DNS-blocked connections never sampled: {dns_result.blocked_count} "
         f"({len(dns_result.blocked_domains())} distinct domains)")

    # Shape: the DNS configuration hides most of the blocking.
    assert dns_result.blocked_count > 0
    assert dns_rate < tcp_rate / 2, (tcp_rate, dns_rate)
    # The users are still censored: the blocked share roughly replaces
    # the tampering the passive view lost.
    assert blocked_share > (tcp_rate - dns_rate) / 2
