"""Active-vs-passive complementarity (the paper's §2.2 / §5.5 / §6 case).

Runs an active scan (test-list driven, two vantages per country) over
the same world as the passive two-week study, then partitions each
country's ground-truth blocklist into the four visibility classes:

* both methods see it,
* active-only ("what *could* be blocked" -- listed but unrequested),
* passive-only (requested and tampered, but missing from the list),
* invisible to both.

Shape claims asserted: passive finds domains active misses (§5.5: test
lists are incomplete), active finds domains passive misses (§3.4: "our
technique is limited to what clients request"), and the union beats
either alone (§6: "only together can they obtain a more complete
picture").
"""

from repro.active.compare import compare_coverage
from repro.active.prober import ActiveProber
from repro.core.report import render_table
from repro.workloads.testlist_gen import build_test_lists

COUNTRIES = ("CN", "IR", "IN", "RU")


def test_active_vs_passive_complementarity(benchmark, study, dataset, emit):
    world = study.world
    lists = build_test_lists(world.universe, seed=7)
    # An active campaign tests the curated lists plus a popularity tier --
    # a realistic scan budget, far smaller than the domain universe.
    test_list = sorted(
        lists["Citizenlab"].entries
        | lists["Greatfire_all"].entries
        | lists["Tranco_10K"].entries
    )
    test_list = [d for d in test_list if d in world.universe]

    prober = ActiveProber(world, seed=7)

    def run_comparison():
        scan = prober.scan(test_list, countries=COUNTRIES, vantages_per_country=2)
        return compare_coverage(world, scan, dataset, countries=COUNTRIES)

    report = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    rows = []
    for cmp in report:
        rows.append([
            cmp.country,
            len(cmp.truth_blocked),
            len(cmp.both),
            len(cmp.active_only),
            len(cmp.passive_only),
            len(cmp.invisible),
            f"{100 * cmp.active_recall:.0f}%",
            f"{100 * cmp.passive_recall:.0f}%",
            f"{100 * cmp.union_recall:.0f}%",
        ])
    emit(render_table(
        ["country", "truth blocked", "both", "active only", "passive only",
         "invisible", "active recall", "passive recall", "union recall"],
        rows,
        title="Active vs passive visibility of each country's blocklist",
    ))

    # §5.5: the passive pipeline surfaces blocked domains the scan missed.
    assert report.total_passive_only > 0
    # §3.4: active measurement sees listed-but-unrequested blocking.
    assert report.total_active_only > 0
    # §6: together they see more than either alone, in every country.
    for cmp in report:
        assert cmp.union_recall >= cmp.active_recall
        assert cmp.union_recall >= cmp.passive_recall
        assert cmp.union_recall > 0
    # At least one heavy censor shows a strictly better union.
    assert any(
        cmp.union_recall > max(cmp.active_recall, cmp.passive_recall)
        for cmp in report
    )
