"""Figure 10 (Appendix B): signature overlap for IP-domain pairs.

For (client IP, domain) pairs observed multiple times, the fraction of
consecutive observations where the first and next signature agree.
Paper observations reproduced in shape: the matrix is diagonal-dominant
(tampering is consistent per pair), and the residual confusion sits
between single-RST and multi-RST variants of the same behaviour.
"""

from repro.core.report import render_matrix


def test_fig10_ip_domain_overlap(benchmark, dataset, emit):
    matrix = benchmark(dataset.overlap_matrix)
    consistency = dataset.overlap_consistency()

    emit(render_matrix(
        {k: float(v) for k, v in matrix.items()},
        title=f"Figure 10: first→next signature for IP-domain pairs "
              f"(row-normalised; diagonal consistency={consistency:.2f})",
    ))

    assert matrix, "need repeat IP-domain observations"
    assert consistency > 0.5, f"diagonal consistency {consistency:.2f} too low"

    # Shape: for rows with enough transitions, the diagonal is the mode.
    from collections import defaultdict

    rows = defaultdict(dict)
    for (first, nxt), count in matrix.items():
        rows[first][nxt] = count
    strong_rows = {first: cells for first, cells in rows.items() if sum(cells.values()) >= 10}
    diagonal_modes = sum(
        1 for first, cells in strong_rows.items()
        if max(cells, key=cells.get) == first
    )
    if strong_rows:
        assert diagonal_modes / len(strong_rows) >= 0.6
