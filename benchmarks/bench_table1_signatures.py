"""Table 1 + §4.1 headline statistics.

Regenerates: the 19-signature catalogue with per-signature match counts,
the possibly-tampered share (paper: 25.7%), the per-stage shares of
possibly tampered connections (paper: 43.2 / 16.1 / 5.3 / 33.0 / 2.3%),
per-stage signature coverage (paper: 99.5 / 98.7 / 97.9 / 69.2%), and
overall coverage (paper: 86.9%).
"""

from repro.core.model import SIGNATURES
from repro.core.report import render_table

PAPER = {
    "possibly_tampered_pct": 25.7,
    "signature_coverage_pct": 86.9,
    "stage_share_pct": {
        "post-syn": 43.2,
        "post-ack": 16.1,
        "post-psh": 5.3,
        "post-data": 33.0,
        "other": 2.3,
    },
    "stage_coverage_pct": {
        "post-syn": 99.5,
        "post-ack": 98.7,
        "post-psh": 97.9,
        "post-data": 69.2,
    },
}


def test_table1_signature_statistics(benchmark, dataset, emit):
    stats = benchmark(dataset.stage_statistics)

    rows = []
    for sig, info in SIGNATURES.items():
        count = stats["signature_counts"].get(sig, 0)
        rows.append([info.stage.value, info.display, count, info.prior_work])
    emit(render_table(
        ["stage", "signature", "matches", "prior work"],
        rows,
        title=f"Table 1: signature matches over {stats['total_connections']} sampled connections",
    ))

    summary_rows = [
        ["possibly tampered %", PAPER["possibly_tampered_pct"], stats["possibly_tampered_pct"]],
        ["signature coverage %", PAPER["signature_coverage_pct"], stats["signature_coverage_pct"]],
    ]
    for stage, paper_value in PAPER["stage_share_pct"].items():
        measured = stats["stage_share_pct"].get(stage, 0.0)
        summary_rows.append([f"stage share {stage} %", paper_value, measured])
    for stage, paper_value in PAPER["stage_coverage_pct"].items():
        measured = stats["stage_coverage_pct"].get(stage, 0.0)
        summary_rows.append([f"stage coverage {stage} %", paper_value, measured])
    emit(render_table(["metric", "paper", "measured"], summary_rows,
                      title="§4.1 headline statistics (paper vs measured)"))

    # Shape assertions: every signature observed; coverage high.
    observed = sum(1 for sig in SIGNATURES if stats["signature_counts"].get(sig, 0) > 0)
    assert observed >= 16, f"only {observed}/19 signatures observed"
    assert stats["signature_coverage_pct"] > 70.0
    assert 5.0 < stats["possibly_tampered_pct"] < 50.0
