"""Figure 4: per-country signature distribution.

The percentage of each country's connections matching each signature
(plus 'Not Tampering').  Paper anchors reproduced in shape:

* Turkmenistan leads (~84% tampered; ⟨SYN; ACK → RST⟩ is 66.4% of its
  tampered connections), Peru is near the top, the US/DE/GB sit at the
  bottom.
* China's mix is dominated by the GFW burst signatures; Iran's by the
  post-handshake drop/RST+ACK family.
"""

from repro.core.model import SignatureId, Stage
from repro.core.report import render_table
from repro.core.stats import wilson_interval
from repro.workloads.profiles import PAPER_FIGURE4_COUNTRIES

#: Paper-reported total tampering rates for anchor countries (%, Fig 4).
PAPER_RATES = {"TM": 84.0, "PE": 53.9, "MX": 30.1}


def test_fig4_country_signature_shares(benchmark, dataset, emit):
    shares = benchmark(dataset.country_signature_shares)
    rates = dataset.country_tampering_rate()

    counts = {}
    for c in dataset:
        total, hits = counts.get(c.country, (0, 0))
        counts[c.country] = (total + 1, hits + (1 if c.tampered else 0))

    ordered = [c for c in PAPER_FIGURE4_COUNTRIES if c in shares]
    rows = []
    for country in ordered:
        sig_shares = {s: p for s, p in shares[country].items() if s.is_tampering}
        top = sorted(sig_shares.items(), key=lambda kv: -kv[1])[:2]
        total, hits = counts.get(country, (0, 0))
        lo, hi = wilson_interval(hits, total)
        rows.append([
            country,
            rates.get(country, 0.0),
            f"[{100 * lo:.1f}, {100 * hi:.1f}]",
            ", ".join(f"{sig.display} {pct:.1f}%" for sig, pct in top),
        ])
    emit(render_table(["country", "tampered %", "95% CI", "dominant signatures"], rows,
                      title="Figure 4: per-country tampering (Fig 4 axis order)"))

    emit(render_table(
        ["country", "paper %", "measured %"],
        [[c, PAPER_RATES[c], rates.get(c, 0.0)] for c in PAPER_RATES],
        title="Anchor rates (paper vs measured)",
    ))

    # Shape: ordering of the extremes.
    assert rates["TM"] == max(rates[c] for c in ordered)
    assert rates["TM"] > 60.0
    assert rates["PE"] > 35.0
    for western in ("US", "DE", "GB"):
        assert rates.get(western, 0.0) < 10.0, western
    assert rates["TM"] > rates["PE"] > rates["US"]

    # Shape: TM dominated by post-ACK RST (its HTTP in-path dropper).
    tm = shares["TM"]
    tampered_total = sum(p for s, p in tm.items() if s.is_tampering)
    assert tm.get(SignatureId.ACK_RST, 0.0) / tampered_total > 0.3

    # Shape: China's mix includes the GFW burst signatures.
    cn = shares.get("CN", {})
    gfw_family = (
        cn.get(SignatureId.PSH_RST_RSTACK, 0.0)
        + cn.get(SignatureId.PSH_RSTACK_RSTACK, 0.0)
        + cn.get(SignatureId.PSH_RST_RST0, 0.0)
    )
    assert gfw_family > 0.0
