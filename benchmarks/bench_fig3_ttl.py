"""Figure 3: maximum (signed) TTL change between RSTs and the preceding
packet, per signature.

Paper observations reproduced in shape: >99% of Not-Tampering
connections show |ΔTTL| ≤ 1; injection signatures show large deltas;
the South-Korean ACK-guessing injector (⟨PSH+ACK → RST ≠ RST⟩) shows a
smeared distribution from its randomised TTLs rather than the step
pattern of fixed-initial-TTL injectors.
"""

from collections import defaultdict

from repro.core.evidence import max_ttl_delta
from repro.core.model import SignatureId
from repro.core.report import render_cdf
from repro.core.sequence import reconstruct_order

MAX_PER_SIGNATURE = 1000


def _collect(dataset, study):
    by_id = {s.conn_id: s for s in study.samples}
    series = defaultdict(list)
    for conn in dataset:
        sample = by_id[conn.conn_id]
        if conn.tampered:
            key = conn.signature.display
        elif not conn.possibly_tampered:
            key = "Not Tampering"
        else:
            continue
        if len(series[key]) >= MAX_PER_SIGNATURE:
            continue
        if conn.tampered:
            delta = max_ttl_delta(sample)
        else:
            ordered = reconstruct_order(sample.packets)
            if len(ordered) < 2:
                continue
            deltas = [b.ttl - a.ttl for a, b in zip(ordered, ordered[1:])]
            delta = max(deltas, key=abs)
        if delta is not None:
            series[key].append(float(delta))
    return dict(series)


def test_fig3_ttl_deltas(benchmark, dataset, study, emit):
    series = benchmark(_collect, dataset, study)
    emit(render_cdf(series, title="Figure 3: max signed ΔTTL between RST and preceding packet",
                    quantiles=(10, 25, 50, 75, 90)))

    baseline = series.get("Not Tampering", [])
    assert baseline
    tight = sum(1 for v in baseline if abs(v) <= 1)
    assert tight / len(baseline) > 0.95

    strong = 0
    for name, values in series.items():
        if name == "Not Tampering" or len(values) < 5:
            continue
        if sum(1 for v in values if abs(v) > 10) / len(values) > 0.4:
            strong += 1
    assert strong >= 3

    # The KR guesser's random TTLs produce high spread when present.
    kr = series.get(SignatureId.PSH_RST_NEQ_RST.display)
    if kr and len(kr) >= 10:
        assert max(kr) - min(kr) > 50, "randomised TTLs should smear the distribution"
