"""Figure 1: signature matching across countries.

For each signature, the share of its matches contributed by each
country.  The paper's observation: most signatures concentrate in a few
countries (CN, IR, RU, IN ...), the distributions do not follow the
baseline traffic distribution, and the Post-Data signatures
(⟨PSH+ACK; Data → ...⟩) spread across many countries.
"""

from repro.core.model import SignatureId
from repro.core.report import render_table


def test_fig1_signature_country_distribution(benchmark, dataset, emit):
    matrix = benchmark(dataset.signature_country_matrix)
    baseline = dataset.baseline_country_distribution()

    rows = []
    for sig, dist in sorted(matrix.items(), key=lambda kv: kv[0].value):
        top3 = list(dist.items())[:3]
        rows.append([
            sig.display,
            sum(1 for _ in dist),
            ", ".join(f"{c} {pct:.0f}%" for c, pct in top3),
        ])
    emit(render_table(["signature", "countries", "top contributors"], rows,
                      title="Figure 1: per-signature country distribution"))

    top_baseline = ", ".join(f"{c} {p:.0f}%" for c, p in list(baseline.items())[:5])
    emit(f"Baseline country distribution (top 5): {top_baseline}")

    # Shape: concentration. For most signatures the top country holds a
    # multiple of its baseline share.
    concentrated = 0
    for sig, dist in matrix.items():
        country, share = next(iter(dist.items()))
        if share >= 2.5 * baseline.get(country, 0.1):
            concentrated += 1
    assert concentrated >= len(matrix) // 2

    # Shape: the Post-Data signatures are geographically widespread.
    data_countries = set()
    for sig in (SignatureId.DATA_RST, SignatureId.DATA_RSTACK):
        data_countries.update(matrix.get(sig, {}))
    assert len(data_countries) >= 3, "Post-Data signatures seen in too few countries"
