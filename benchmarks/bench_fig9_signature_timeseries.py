"""Figure 9 (Appendix A): per-signature global match rates over time.

The percentage of all connections matching each signature across the
two-week window.  Paper observation reproduced in shape: signatures
concentrated in few countries (e.g. ⟨PSH+ACK → RST⟩, ⟨SYN → RST⟩) show
stronger diurnal variance than the geographically-spread Post-Data
signatures (⟨PSH+ACK; Data → ...⟩).
"""

import statistics

from repro.core.model import SignatureId, Stage
from repro.core.report import render_timeseries

_HOUR = 3600.0
ALL_STAGES = (Stage.POST_SYN, Stage.POST_ACK, Stage.POST_PSH, Stage.POST_DATA)


def _relative_diurnal_variance(points):
    values = [pct for _, pct in points]
    mean = statistics.fmean(values) if values else 0.0
    if mean <= 0:
        return 0.0
    return statistics.pstdev(values) / mean


def test_fig9_per_signature_timeseries(benchmark, dataset, study, emit):
    series = benchmark(dataset.timeseries, 6 * _HOUR, None, None, ALL_STAGES, True)

    top = dict(sorted(series.items(),
                      key=lambda kv: -max((v for _, v in kv[1]), default=0.0))[:8])
    emit(render_timeseries(top, title="Figure 9: per-signature match % over time",
                           t0=study.start_ts, max_points=10))

    rows = sorted(
        ((name, _relative_diurnal_variance(pts)) for name, pts in series.items()),
        key=lambda kv: -kv[1],
    )
    from repro.core.report import render_table

    emit(render_table(["signature", "relative variance"],
                      [[n, v] for n, v in rows],
                      title="Diurnal variance per signature (coefficient of variation)"))

    assert len(series) >= 10, "most signatures should appear in the timeseries"

    # Shape: geographically-spread Post-Data signatures vary less than
    # the most country-concentrated signatures.
    variance = dict(rows)
    spread_sigs = [
        variance.get(SignatureId.DATA_RST.display),
        variance.get(SignatureId.DATA_RSTACK.display),
    ]
    spread_sigs = [v for v in spread_sigs if v is not None]
    top_quartile = [v for _, v in rows[: max(1, len(rows) // 4)]]
    if spread_sigs and top_quartile:
        assert min(top_quartile) >= min(spread_sigs)
