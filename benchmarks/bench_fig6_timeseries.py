"""Figure 6: Post-ACK + Post-PSH signature matches over time.

The percentage of connections matching Post-ACK/Post-PSH signatures per
country over the two-week window.  Paper observations reproduced in
shape: heavy censors (CN, IR) sit far above the Western baseline (US,
DE, GB) throughout, and the series show diurnal structure with higher
match rates in local night hours.
"""

from repro.core.aggregate import POST_ACK_PSH_STAGES
from repro.core.report import render_timeseries
from repro.workloads.profiles import profile_for
from repro.workloads.traffic import local_hour

COUNTRIES = ("CN", "DE", "GB", "IN", "IR", "RU", "US")
_HOUR = 3600.0


def test_fig6_postack_postpsh_timeseries(benchmark, dataset, study, emit):
    series = benchmark(
        dataset.timeseries,
        6 * _HOUR,
        COUNTRIES,
        None,
        POST_ACK_PSH_STAGES,
    )
    emit(render_timeseries(series, title="Figure 6: Post-ACK/Post-PSH matches over time (%)",
                           t0=study.start_ts, max_points=10))

    means = {c: (sum(v for _, v in pts) / len(pts) if pts else 0.0) for c, pts in series.items()}
    for censored in ("CN", "IR"):
        for free in ("US", "DE", "GB"):
            if censored in means and free in means:
                assert means[censored] > means[free], (censored, free)

    # Diurnal structure: night buckets (local 00:00-08:00) above day.
    night, day = [], []
    for country in ("CN", "IR", "IN"):
        profile = profile_for(country)
        scoped = dataset.in_countries([country])
        hourly = scoped.timeseries(bucket_seconds=_HOUR, stages=POST_ACK_PSH_STAGES)
        for t, pct in hourly.get(country, []):
            if local_hour(t, profile.tz_offset) < 8.0:
                night.append(pct)
            else:
                day.append(pct)
    assert night and day
    assert sum(night) / len(night) > sum(day) / len(day)
