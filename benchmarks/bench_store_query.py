"""Rollup-store benchmarks: ingest rate, query latency, compaction.

Not a paper artifact -- this measures the durable tier added by
:mod:`repro.store`: records ingested per second through the WAL + seal
path, query latency for the four batch-parity families against a fully
sealed store (before and after compaction, and with time-range
pushdown), and the write amplification compaction pays to keep the
segment count bounded.

Writes ``BENCH_store_query.json`` (path override:
``REPRO_BENCH_STORE_JSON``) so CI can track the storage tier as a
trajectory; the report test is also the regression gate -- it fails
the job if the store's answers ever diverge from an in-memory
:class:`StreamRollup` over the same records, or if compaction stops
reducing the segment count.
"""

import json
import os
import time

import pytest

from repro.store import CompactionConfig, RollupStore, StoreConfig, StoreQuery
from repro.stream import StreamRollup, serial_records

HOUR = 3600.0
SEAL_EVERY = 500  # records between seal_through sweeps during ingest

#: Filled in by the store benchmarks, flushed by the report test.
_STORE_STATS = {}

_JSON_PATH = os.environ.get("REPRO_BENCH_STORE_JSON", "BENCH_store_query.json")


def _ordered(value):
    """Freeze dict key order into lists so ``==`` compares it too."""
    if isinstance(value, dict):
        return [[str(key), _ordered(val)] for key, val in value.items()]
    if isinstance(value, (list, tuple)):
        return [_ordered(item) for item in value]
    return value


def _ingest(records, directory, config):
    """The engine's ingest pattern: add + periodic seal + compaction."""
    store = RollupStore(str(directory), config=config)
    watermark = None
    for index, record in enumerate(records):
        store.add(record)
        if watermark is None or record.ts > watermark:
            watermark = record.ts
        if index % SEAL_EVERY == SEAL_EVERY - 1:
            if store.seal_through(watermark - 2 * HOUR):
                store.maybe_compact()
    store.seal_open()
    store.maybe_compact()
    store.flush()
    return store


@pytest.fixture(scope="module")
def records(study):
    """The study's classified, located stream records (built once)."""
    geo = study.world.geo
    out = []
    for record in serial_records(study.samples, study.timestamps):
        located = geo.lookup_or_none(record.client_ip)
        if located is not None:
            record = record.located(located.country, located.asn)
        out.append(record)
    return out


@pytest.fixture(scope="module")
def built(records, tmp_path_factory):
    """A sealed store (compaction deferred) plus its reference rollup."""
    rollup = StreamRollup()
    for record in records:
        rollup.add(record)
    directory = tmp_path_factory.mktemp("bench-store") / "store"
    config = StoreConfig(
        compaction=CompactionConfig(trigger=4, fanout=8, max_level=2)
    )
    store = RollupStore(str(directory), config=config)
    watermark = None
    for index, record in enumerate(records):
        store.add(record)
        if watermark is None or record.ts > watermark:
            watermark = record.ts
        if index % SEAL_EVERY == SEAL_EVERY - 1:
            store.seal_through(watermark - 2 * HOUR)  # no compaction yet
    store.seal_open()
    yield store, rollup
    store.close()


def _families(store, rollup):
    """(name, StoreQuery, reference answer) for all four families."""
    country = rollup.countries[0]
    return [
        (
            "country_tampering_rate",
            StoreQuery("country_tampering_rate"),
            rollup.country_tampering_rate(),
        ),
        ("timeseries", StoreQuery("timeseries"), rollup.timeseries()),
        (
            "signature_hour_counts",
            StoreQuery("signature_hour_counts", country=country),
            rollup.signature_hour_counts(country),
        ),
        (
            "stage_statistics",
            StoreQuery("stage_statistics"),
            rollup.stage_statistics(),
        ),
    ]


def test_store_ingest_rate(benchmark, records, tmp_path, emit):
    """WAL append + seal + compaction, end to end, records/second."""
    config = StoreConfig(
        compaction=CompactionConfig(trigger=8, fanout=8, max_level=2)
    )
    rounds = []

    def run():
        directory = tmp_path / f"ingest-{len(rounds)}"
        rounds.append(directory)
        store = _ingest(records, directory, config)
        store.close()

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)

    rate = len(records) / benchmark.stats.stats.mean
    _STORE_STATS["ingest_rps"] = rate
    _STORE_STATS["n_records"] = len(records)
    emit(f"store ingest (WAL + seal + compact): {rate:,.0f} records/second "
         f"({len(records)} records per round)")


def test_store_query_country_rates(benchmark, built, emit):
    """Full-history country_tampering_rate against the sealed store."""
    store, rollup = built
    query = StoreQuery("country_tampering_rate")

    value = benchmark(lambda: store.query(query).value)

    assert _ordered(value) == _ordered(rollup.country_tampering_rate())
    latency_ms = 1000.0 * benchmark.stats.stats.mean
    _STORE_STATS["query_country_rates_ms"] = latency_ms
    emit(f"country_tampering_rate over {len(store.manifest.segments)} segments: "
         f"{latency_ms:.1f} ms")


def test_store_query_pushdown(benchmark, built, emit):
    """Time-range timeseries: pushdown must skip most segments."""
    store, rollup = built
    buckets = sorted({bucket for _, bucket in rollup.bucket_totals})
    lo = buckets[len(buckets) // 2]
    hi = buckets[len(buckets) // 2 + len(buckets) // 8]
    query = StoreQuery("timeseries", start=lo, end=hi)

    result = benchmark(lambda: store.query(query))

    assert result.segments_skipped > result.segments_scanned
    latency_ms = 1000.0 * benchmark.stats.stats.mean
    _STORE_STATS["query_pushdown_ms"] = latency_ms
    _STORE_STATS["pushdown_segments_scanned"] = result.segments_scanned
    _STORE_STATS["pushdown_segments_skipped"] = result.segments_skipped
    emit(f"range timeseries ({(hi - lo) / HOUR:.0f}h window): {latency_ms:.1f} ms, "
         f"scanned {result.segments_scanned} / skipped {result.segments_skipped} segments")


def test_store_compaction_and_report(built, emit):
    """Compact, re-verify all four families, persist the trajectory.

    This is the divergence gate: before *and* after compaction every
    family must answer byte-for-byte (values and key order) like the
    in-memory rollup, and compaction must actually shrink the segment
    count it paid write amplification for.
    """
    store, rollup = built

    def family_latencies():
        out = {}
        for name, query, reference in _families(store, rollup):
            best = None
            for _ in range(5):
                tick = time.perf_counter()
                value = store.query(query).value
                elapsed = time.perf_counter() - tick
                best = elapsed if best is None else min(best, elapsed)
            assert _ordered(value) == _ordered(reference), (
                f"store query {name} diverged from the in-memory rollup"
            )
            out[name] = 1000.0 * best
        return out

    l0_stats = store.stats()
    _STORE_STATS["l0_segments"] = l0_stats["segments"]
    _STORE_STATS["l0_live_bytes"] = l0_stats["live_bytes"]
    _STORE_STATS["query_ms_before_compaction"] = family_latencies()

    runs = store.compact(max_runs=256)
    stats = store.stats()
    _STORE_STATS["compaction_runs"] = stats["compaction_runs"]
    _STORE_STATS["segments_after_compaction"] = stats["segments"]
    _STORE_STATS["live_bytes"] = stats["live_bytes"]
    _STORE_STATS["compaction_bytes_written"] = stats["compaction_bytes_written"]
    # Total segment bytes ever written (level-0 files + every merge)
    # over the bytes finally live: the price of a bounded segment count.
    amplification = (
        (l0_stats["live_bytes"] + stats["compaction_bytes_written"])
        / stats["live_bytes"]
        if stats["live_bytes"]
        else 0.0
    )
    _STORE_STATS["write_amplification"] = amplification
    _STORE_STATS["query_ms_after_compaction"] = family_latencies()
    _STORE_STATS["parity_ok"] = True

    payload = dict(_STORE_STATS)
    with open(_JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    before = _STORE_STATS["query_ms_before_compaction"]
    after = _STORE_STATS["query_ms_after_compaction"]
    lines = [f"store trajectory (written to {_JSON_PATH}):"]
    if "ingest_rps" in _STORE_STATS:
        lines.append(f"  ingest: {_STORE_STATS['ingest_rps']:,.0f} records/s")
    lines.append(
        f"  compaction: {_STORE_STATS['l0_segments']} L0 segments -> "
        f"{stats['segments']} in {runs} merges "
        f"(write amplification {amplification:.2f}x)"
    )
    for name in before:
        lines.append(
            f"  {name}: {before[name]:.1f} ms -> {after[name]:.1f} ms"
        )
    emit("\n".join(lines))

    assert runs >= 1, "compaction never ran on a long sealed history"
    assert stats["segments"] < l0_stats["segments"], (
        "compaction did not reduce the segment count"
    )
    assert store.compactor.due(store.manifest) is None
