"""Pipeline micro-benchmarks: classifier and capture throughput.

Not a paper artifact -- this measures the reproduction's own processing
rates: connections classified per second (the figure a CDN would care
about when sizing the pipeline), the feature-key memo's speedup and hit
rate on the repetitive default workload, the ``classify_batch`` process
pool, the cost of the order-reconstruction step relative to
classification, and the serial-vs-sharded scaling of the streaming
worker pool.

The classifier family of benchmarks additionally writes
``BENCH_classifier_throughput.json`` (path override:
``REPRO_BENCH_JSON``) recording uncached / cached / multi-worker
throughput plus the memo hit rate, so CI can track the fast path as a
trajectory and fail on regression.
"""

import json
import os

import pytest

from repro.core.classifier import ClassifierConfig, TamperingClassifier
from repro.core.sequence import reconstruct_order
from repro.stream import ShardConfig, ShardedClassifierPool

#: Filled in by the classifier benchmarks, flushed by the report test.
_CLASSIFIER_STATS = {}

_JSON_PATH = os.environ.get("REPRO_BENCH_JSON", "BENCH_classifier_throughput.json")


def test_classifier_throughput(benchmark, study, emit):
    """Uncached single-process reference throughput."""
    classifier = TamperingClassifier(ClassifierConfig(cache_size=0))
    samples = study.samples

    results = benchmark(classifier.classify_all, samples)

    assert len(results) == len(samples)
    rate = len(samples) / benchmark.stats.stats.mean
    _CLASSIFIER_STATS["uncached_cps"] = rate
    _CLASSIFIER_STATS["n_samples"] = len(samples)
    emit(f"classifier throughput (uncached): {rate:,.0f} connections/second "
         f"({len(samples)} samples per round)")


def test_classifier_throughput_cached(benchmark, study, emit):
    """Feature-key memo enabled (the default config)."""
    classifier = TamperingClassifier()
    samples = study.samples

    results = benchmark(classifier.classify_all, samples)

    assert len(results) == len(samples)
    rate = len(samples) / benchmark.stats.stats.mean
    info = classifier.cache_info()
    _CLASSIFIER_STATS["cached_cps"] = rate
    _CLASSIFIER_STATS["cache_hit_rate"] = info.hit_rate
    _CLASSIFIER_STATS["cache_entries"] = info.currsize
    emit(f"classifier throughput (cached): {rate:,.0f} connections/second "
         f"(hit rate {100 * info.hit_rate:.1f}%, {info.currsize} memo entries)")


def test_classifier_throughput_batch_workers(benchmark, study, emit):
    """classify_batch across a 4-worker process pool."""
    samples = study.samples
    classifier = TamperingClassifier()

    def run():
        return classifier.classify_batch(samples, workers=4)

    results = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)

    assert len(results) == len(samples)
    rate = len(samples) / benchmark.stats.stats.mean
    _CLASSIFIER_STATS["batch4_cps"] = rate
    emit(f"classify_batch (4 workers): {rate:,.0f} connections/second")


def test_classifier_throughput_report(emit):
    """Summarise and persist the classifier fast-path trajectory.

    Always asserts the memo does not make classification slower; the
    stronger >= 3x claim on the repetitive default workload is asserted
    when ``REPRO_BENCH_REQUIRE_SPEEDUP=1`` (CI sets it) so tiny ad-hoc
    runs on loaded machines do not flake.
    """
    if "uncached_cps" not in _CLASSIFIER_STATS or "cached_cps" not in _CLASSIFIER_STATS:
        pytest.skip("classifier benchmarks did not run")
    uncached = _CLASSIFIER_STATS["uncached_cps"]
    cached = _CLASSIFIER_STATS["cached_cps"]
    speedup = cached / uncached if uncached else 0.0
    _CLASSIFIER_STATS["cached_speedup"] = speedup

    payload = dict(_CLASSIFIER_STATS)
    with open(_JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    lines = [f"classifier fast path (written to {_JSON_PATH}):"]
    lines.append(f"  uncached: {uncached:,.0f} conn/s")
    lines.append(
        f"  cached:   {cached:,.0f} conn/s ({speedup:.2f}x, hit rate "
        f"{100 * _CLASSIFIER_STATS.get('cache_hit_rate', 0.0):.1f}%)"
    )
    if "batch4_cps" in _CLASSIFIER_STATS:
        lines.append(f"  4-worker batch: {_CLASSIFIER_STATS['batch4_cps']:,.0f} conn/s")
    emit("\n".join(lines))

    assert cached >= uncached, (
        f"memoized classification ({cached:,.0f} conn/s) regressed below "
        f"the uncached path ({uncached:,.0f} conn/s)"
    )
    if os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP") == "1":
        assert speedup >= 3.0, (
            f"cached speedup {speedup:.2f}x below the 3x floor on the "
            f"repetitive default workload"
        )


def test_classifier_throughput_without_reorder(benchmark, study):
    classifier = TamperingClassifier(ClassifierConfig(reorder=False))
    results = benchmark(classifier.classify_all, study.samples)
    assert len(results) == len(study.samples)


def test_order_reconstruction_cost(benchmark, study):
    packet_lists = [s.packets for s in study.samples]

    def reconstruct_all():
        return [reconstruct_order(packets) for packets in packet_lists]

    ordered = benchmark(reconstruct_all)
    assert len(ordered) == len(packet_lists)


def test_evidence_throughput(benchmark, study):
    from repro.core.evidence import evidence_for_sample

    def run():
        return [evidence_for_sample(s) for s in study.samples]

    summaries = benchmark(run)
    assert len(summaries) == len(study.samples)


# ----------------------------------------------------------------------
# Streaming pool scaling: serial vs 1/2/4-worker sharded pools
# ----------------------------------------------------------------------
_POOL_RATES = {}


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def test_stream_pool_serial_baseline(benchmark, study, emit):
    classifier = TamperingClassifier()
    samples = study.samples

    results = benchmark(classifier.classify_all, samples)

    assert len(results) == len(samples)
    rate = len(samples) / benchmark.stats.stats.mean
    _POOL_RATES["serial"] = rate
    emit(f"stream pool serial baseline: {rate:,.0f} connections/second")


@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_stream_pool_sharded(benchmark, study, emit, n_workers):
    samples = study.samples
    config = ShardConfig(n_workers=n_workers, batch_size=256, max_inflight=4096)

    def run():
        with ShardedClassifierPool(config) as pool:
            return pool.map_samples(samples)

    records = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)

    assert len(records) == len(samples)
    rate = len(samples) / benchmark.stats.stats.mean
    _POOL_RATES[n_workers] = rate
    emit(f"stream pool ({n_workers} workers): {rate:,.0f} connections/second")


def test_stream_pool_scaling_report(emit):
    """Summarise ops/s per configuration; assert scaling when cores allow.

    The >= 2x speedup check only means something on a machine that can
    actually run 4 classifier workers in parallel, so it is gated on
    core count (or forced with REPRO_BENCH_REQUIRE_SCALING=1).
    """
    if "serial" not in _POOL_RATES or 4 not in _POOL_RATES:
        pytest.skip("pool benchmarks did not run")
    serial = _POOL_RATES["serial"]
    lines = [f"stream pool scaling (serial = {serial:,.0f} conn/s):"]
    for n_workers in (1, 2, 4):
        rate = _POOL_RATES.get(n_workers)
        if rate:
            lines.append(
                f"  {n_workers} workers: {rate:,.0f} conn/s "
                f"({rate / serial:.2f}x serial)"
            )
    cores = _available_cores()
    lines.append(f"  (machine has {cores} usable cores)")
    emit("\n".join(lines))

    require = os.environ.get("REPRO_BENCH_REQUIRE_SCALING") == "1"
    if cores >= 4 or require:
        assert _POOL_RATES[4] >= 2.0 * serial, (
            f"4-worker pool ({_POOL_RATES[4]:,.0f} conn/s) should be >= 2x "
            f"serial ({serial:,.0f} conn/s) on a {cores}-core machine"
        )
