"""Pipeline micro-benchmarks: classifier and capture throughput.

Not a paper artifact -- this measures the reproduction's own processing
rates: connections classified per second (the figure a CDN would care
about when sizing the pipeline) and the cost of the order-reconstruction
step relative to classification.
"""

from repro.core.classifier import ClassifierConfig, TamperingClassifier
from repro.core.sequence import reconstruct_order


def test_classifier_throughput(benchmark, study, emit):
    classifier = TamperingClassifier()
    samples = study.samples

    results = benchmark(classifier.classify_all, samples)

    assert len(results) == len(samples)
    rate = len(samples) / benchmark.stats.stats.mean
    emit(f"classifier throughput: {rate:,.0f} connections/second "
         f"({len(samples)} samples per round)")


def test_classifier_throughput_without_reorder(benchmark, study):
    classifier = TamperingClassifier(ClassifierConfig(reorder=False))
    results = benchmark(classifier.classify_all, study.samples)
    assert len(results) == len(study.samples)


def test_order_reconstruction_cost(benchmark, study):
    packet_lists = [s.packets for s in study.samples]

    def reconstruct_all():
        return [reconstruct_order(packets) for packets in packet_lists]

    ordered = benchmark(reconstruct_all)
    assert len(ordered) == len(packet_lists)


def test_evidence_throughput(benchmark, study):
    from repro.core.evidence import evidence_for_sample

    def run():
        return [evidence_for_sample(s) for s in study.samples]

    summaries = benchmark(run)
    assert len(summaries) == len(study.samples)
