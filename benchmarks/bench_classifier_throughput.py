"""Pipeline micro-benchmarks: classifier and capture throughput.

Not a paper artifact -- this measures the reproduction's own processing
rates: connections classified per second (the figure a CDN would care
about when sizing the pipeline), the cost of the order-reconstruction
step relative to classification, and the serial-vs-sharded scaling of
the streaming worker pool.
"""

import os

import pytest

from repro.core.classifier import ClassifierConfig, TamperingClassifier
from repro.core.sequence import reconstruct_order
from repro.stream import ShardConfig, ShardedClassifierPool


def test_classifier_throughput(benchmark, study, emit):
    classifier = TamperingClassifier()
    samples = study.samples

    results = benchmark(classifier.classify_all, samples)

    assert len(results) == len(samples)
    rate = len(samples) / benchmark.stats.stats.mean
    emit(f"classifier throughput: {rate:,.0f} connections/second "
         f"({len(samples)} samples per round)")


def test_classifier_throughput_without_reorder(benchmark, study):
    classifier = TamperingClassifier(ClassifierConfig(reorder=False))
    results = benchmark(classifier.classify_all, study.samples)
    assert len(results) == len(study.samples)


def test_order_reconstruction_cost(benchmark, study):
    packet_lists = [s.packets for s in study.samples]

    def reconstruct_all():
        return [reconstruct_order(packets) for packets in packet_lists]

    ordered = benchmark(reconstruct_all)
    assert len(ordered) == len(packet_lists)


def test_evidence_throughput(benchmark, study):
    from repro.core.evidence import evidence_for_sample

    def run():
        return [evidence_for_sample(s) for s in study.samples]

    summaries = benchmark(run)
    assert len(summaries) == len(study.samples)


# ----------------------------------------------------------------------
# Streaming pool scaling: serial vs 1/2/4-worker sharded pools
# ----------------------------------------------------------------------
_POOL_RATES = {}


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def test_stream_pool_serial_baseline(benchmark, study, emit):
    classifier = TamperingClassifier()
    samples = study.samples

    results = benchmark(classifier.classify_all, samples)

    assert len(results) == len(samples)
    rate = len(samples) / benchmark.stats.stats.mean
    _POOL_RATES["serial"] = rate
    emit(f"stream pool serial baseline: {rate:,.0f} connections/second")


@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_stream_pool_sharded(benchmark, study, emit, n_workers):
    samples = study.samples
    config = ShardConfig(n_workers=n_workers, batch_size=256, max_inflight=4096)

    def run():
        with ShardedClassifierPool(config) as pool:
            return pool.map_samples(samples)

    records = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)

    assert len(records) == len(samples)
    rate = len(samples) / benchmark.stats.stats.mean
    _POOL_RATES[n_workers] = rate
    emit(f"stream pool ({n_workers} workers): {rate:,.0f} connections/second")


def test_stream_pool_scaling_report(emit):
    """Summarise ops/s per configuration; assert scaling when cores allow.

    The >= 2x speedup check only means something on a machine that can
    actually run 4 classifier workers in parallel, so it is gated on
    core count (or forced with REPRO_BENCH_REQUIRE_SCALING=1).
    """
    if "serial" not in _POOL_RATES or 4 not in _POOL_RATES:
        pytest.skip("pool benchmarks did not run")
    serial = _POOL_RATES["serial"]
    lines = [f"stream pool scaling (serial = {serial:,.0f} conn/s):"]
    for n_workers in (1, 2, 4):
        rate = _POOL_RATES.get(n_workers)
        if rate:
            lines.append(
                f"  {n_workers} workers: {rate:,.0f} conn/s "
                f"({rate / serial:.2f}x serial)"
            )
    cores = _available_cores()
    lines.append(f"  (machine has {cores} usable cores)")
    emit("\n".join(lines))

    require = os.environ.get("REPRO_BENCH_REQUIRE_SCALING") == "1"
    if cores >= 4 or require:
        assert _POOL_RATES[4] >= 2.0 * serial, (
            f"4-worker pool ({_POOL_RATES[4]:,.0f} conn/s) should be >= 2x "
            f"serial ({serial:,.0f} conn/s) on a {cores}-core machine"
        )
