"""Observability overhead: instrumented vs. uninstrumented throughput.

Not a paper artifact -- this guards the promise :mod:`repro.obs` makes
to the hot paths: span timers and counters are cheap enough to leave on
by default.  Two pipelines run with a live ``Observability`` (the
engine default) and with ``NULL_OBS`` (instrumentation compiled down
to no-ops):

* the **classifier path** -- a serial ``StreamEngine`` run
  (source read, classify with the memo split, rollup fold, anomaly
  scan), the per-record-hottest loop in the repo;
* the **store path** -- ``RollupStore`` ingest with periodic sealing
  (WAL append/fsync, segment seal, compaction merge).

The two arms are deliberately *interleaved*, alternating which goes
first: on shared runners, machine throughput drifts by far more than
the overhead being measured, so timing one arm's rounds after the
other's (the usual one-benchmark-per-arm layout) measures the drift,
not the instrumentation.  Even interleaved, a single statistic stays
noisy (an A/A comparison -- both arms NULL_OBS -- can read several
percent on a loaded box), so the gate takes the smallest of three
complementary estimators:

* the ratio of per-arm minimums -- robust to per-run jitter, since the
  minimum picks each arm's quietest run;
* the median of per-pair ratios -- robust to multi-second load epochs,
  since both runs of a pair share the same weather;
* the lower quartile of per-pair ratios -- background load amplifies
  the instrumented arm more often than it deflates it (cache and
  scheduler pressure make every extra instruction dearer), so pair
  contamination is one-sided and the lower quartile tracks the
  quiet-machine cost.  A real regression still shifts the whole ratio
  distribution, lower quartile included.

A real regression inflates all three; noise rarely deflates all three
at once.  Under the strict CI gate a failing path is re-measured once
from scratch -- two independent measurements must both exceed the
ceiling -- which turns a p false-failure rate into p^2.

The headline percentage is clamped at zero: instrumentation cannot
speed the pipeline up, so a negative reading is the measurement's
noise floor showing, not a real speedup.  The magnitude below zero is
reported separately as ``noise_floor_pct`` -- when it rivals the 5%
ceiling, the gate's verdict on this machine is weather, not signal.
The unclamped estimators stay in the per-path ``*_min_ratio`` /
``*_median_pair`` / ``*_p25_pair`` fields.

With ``REPRO_BENCH_TRACE_SAMPLE=N`` set (CI sets 64), the instrumented
arm also head-samples 1 in N items for end-to-end span trees -- the
engine arm via ``trace_sample_n``, the store arm by activating a
sampled context around 1 in N adds -- so the gate certifies the
*tracing-on* default, not just bare counters and timers.

Writes ``BENCH_obs_overhead.json`` (path override:
``REPRO_BENCH_OBS_JSON``) recording both rates, all three estimators,
the gated overhead percentage per path, and a ``methodology`` note.
The report test always asserts the overhead is sane; the strict <= 5%
ceiling is enforced when ``REPRO_BENCH_REQUIRE_OBS_OVERHEAD=1`` (CI
sets it) so tiny ad-hoc runs on loaded machines do not flake.
"""

import json
import os
import pathlib
import shutil
import statistics
import tempfile
import time

import pytest

from repro.obs import (
    NULL_OBS,
    HeadSampler,
    Observability,
    TraceContext,
    mint_span_id,
    mint_trace_id,
)
from repro.store import CompactionConfig, RollupStore, StoreConfig
from repro.stream import IterableSource, StreamEngine, serial_records

HOUR = 3600.0
SEAL_EVERY = 500

#: Alternating (null, obs) run pairs per path.  The pair-quantile
#: estimators' standard error shrinks as 1/sqrt(pairs), and the gate
#: compares a few-percent signal against a few-percent noise floor, so
#: err well on the high side -- a pair is ~2 x 250 ms at the CI
#: workload size.
ENGINE_PAIRS = 32
STORE_PAIRS = 32

#: Filled in by the overhead benchmarks, flushed by the report test.
_OBS_STATS = {}

_JSON_PATH = os.environ.get("REPRO_BENCH_OBS_JSON", "BENCH_obs_overhead.json")

#: The strict ceiling the report test enforces under the CI gate.
MAX_OVERHEAD_PCT = 5.0

METHODOLOGY = (
    "Interleaved (NULL_OBS, instrumented) run pairs, alternating order "
    "to cancel machine drift; gated overhead is min(min-ratio, "
    "median-pair-ratio, p25-pair-ratio), clamped at 0 (instrumentation "
    "cannot be a speedup -- negative readings are noise, reported as "
    "noise_floor_pct); trace_sample_n > 0 means the instrumented arm "
    "also head-sampled 1-in-N span trees."
)


def _strict_gate():
    return os.environ.get("REPRO_BENCH_REQUIRE_OBS_OVERHEAD") == "1"


def _trace_sample_n():
    """1-in-N head sampling for the instrumented arm (0 = no tracing)."""
    try:
        return max(0, int(os.environ.get("REPRO_BENCH_TRACE_SAMPLE", "0")))
    except ValueError:
        return 0


def _paired_times(run_null, run_obs, pairs):
    """Time ``pairs`` adjacent (null, obs) runs, alternating order.

    Alternation cancels linear machine drift; adjacency keeps both
    arms of a pair under the same load.
    """
    nulls, obss = [], []
    for index in range(pairs):
        if index % 2:
            obss.append(run_obs())
            nulls.append(run_null())
        else:
            nulls.append(run_null())
            obss.append(run_obs())
    return nulls, obss


def _estimators(nulls, obss):
    """Gate percentage (smallest of three -- see module docstring) plus
    each estimator, from one path's paired run times."""
    pair_ratios = [o / x for o, x in zip(obss, nulls)]
    min_ratio_pct = 100.0 * (min(obss) / min(nulls) - 1.0)
    median_pct = 100.0 * (statistics.median(pair_ratios) - 1.0)
    p25_pct = 100.0 * (statistics.quantiles(pair_ratios, n=4)[0] - 1.0)
    detail = {
        "min_ratio": min_ratio_pct,
        "median_pair": median_pct,
        "p25_pair": p25_pct,
    }
    return min(detail.values()), detail


def _measure_path(run_null, run_obs, pairs, emit, label):
    """One full interleaved measurement; under the strict gate, retry
    once if the first attempt exceeds the ceiling and keep the better
    attempt.  Two independent over-ceiling measurements must agree
    before the report test fails the job."""
    attempts = 1
    nulls, obss = _paired_times(run_null, run_obs, pairs)
    pct, detail = _estimators(nulls, obss)
    if _strict_gate() and pct > MAX_OVERHEAD_PCT:
        emit(
            f"{label}: first measurement read {pct:+.2f}% (over the "
            f"{MAX_OVERHEAD_PCT}% ceiling); re-measuring once"
        )
        attempts = 2
        nulls2, obss2 = _paired_times(run_null, run_obs, pairs)
        pct2, detail2 = _estimators(nulls2, obss2)
        if pct2 < pct:
            nulls, obss, pct, detail = nulls2, obss2, pct2, detail2
    return nulls, obss, pct, detail, attempts


def _engine_run(study, obs):
    source = IterableSource(study.samples, timestamps=study.timestamps)
    trace_n = _trace_sample_n() if obs is not NULL_OBS else 0
    t0 = time.perf_counter()
    report = StreamEngine(
        source, geodb=study.world.geo, n_workers=0, obs=obs,
        trace_sample_n=trace_n,
    ).run()
    elapsed = time.perf_counter() - t0
    assert report.samples_processed == len(study.samples)
    if obs is not NULL_OBS:
        assert "obs" in report.metrics  # the instrumentation actually ran
        if trace_n:
            assert obs.trace_recorder.stats()["spans"] > 0
    return elapsed


@pytest.fixture(scope="module")
def records(study):
    """The study's classified, located stream records (built once)."""
    geo = study.world.geo
    out = []
    for record in serial_records(study.samples, study.timestamps):
        located = geo.lookup_or_none(record.client_ip)
        if located is not None:
            record = record.located(located.country, located.asn)
        out.append(record)
    return out


def _ingest(records, directory, obs):
    """The engine's ingest pattern: add + periodic seal + compaction."""
    config = StoreConfig(
        compaction=CompactionConfig(trigger=4, fanout=8, max_level=2)
    )
    trace_n = _trace_sample_n() if obs is not NULL_OBS else 0
    rec = getattr(obs, "trace_recorder", None) if trace_n else None
    sampler = HeadSampler(trace_n) if rec is not None else None
    t0 = time.perf_counter()
    store = RollupStore(str(directory), config=config, obs=obs)
    watermark = None
    for index, record in enumerate(records):
        if sampler is not None and sampler.decide():
            # Mirror serve-side ingest: 1 in N adds runs under a
            # sampled context, so WAL append/fsync span recording is
            # part of what the gate prices.
            rec.activate(
                TraceContext(mint_trace_id(), mint_span_id(), True)
            )
            store.add(record)
            rec.activate(None)
        else:
            store.add(record)
        if watermark is None or record.ts > watermark:
            watermark = record.ts
        if index % SEAL_EVERY == SEAL_EVERY - 1:
            if store.seal_through(watermark - 2 * HOUR):
                store.maybe_compact()
    store.seal_open()
    store.maybe_compact()
    store.close()
    return time.perf_counter() - t0


# ----------------------------------------------------------------------
# Classifier path: serial StreamEngine
# ----------------------------------------------------------------------
def test_engine_obs_overhead(study, emit):
    """Interleaved NULL_OBS vs. instrumented serial-engine runs."""
    _engine_run(study, NULL_OBS)  # warm both arms
    _engine_run(study, Observability())
    nulls, obss, pct, detail, attempts = _measure_path(
        lambda: _engine_run(study, NULL_OBS),
        lambda: _engine_run(study, Observability()),
        ENGINE_PAIRS,
        emit,
        "engine",
    )
    n = len(study.samples)
    _OBS_STATS["engine_null_cps"] = n / min(nulls)
    _OBS_STATS["engine_obs_cps"] = n / min(obss)
    _OBS_STATS["engine_overhead_pct"] = max(0.0, pct)
    _OBS_STATS["engine_noise_floor_pct"] = max(0.0, -pct)
    _OBS_STATS["engine_overhead_pct_min_ratio"] = detail["min_ratio"]
    _OBS_STATS["engine_overhead_pct_median_pair"] = detail["median_pair"]
    _OBS_STATS["engine_overhead_pct_p25_pair"] = detail["p25_pair"]
    _OBS_STATS["engine_attempts"] = attempts
    _OBS_STATS["n_samples"] = n
    emit(
        f"serial engine: {_OBS_STATS['engine_null_cps']:,.0f} conn/s "
        f"(NULL_OBS) vs {_OBS_STATS['engine_obs_cps']:,.0f} conn/s "
        f"(instrumented), best of {ENGINE_PAIRS} interleaved pairs"
    )


# ----------------------------------------------------------------------
# Store path: WAL + seal + compaction ingest
# ----------------------------------------------------------------------
def test_store_obs_overhead(records, tmp_path, emit):
    """Interleaved NULL_OBS vs. instrumented store-ingest runs."""
    # Prefer tmpfs: this test measures instrumentation cost, and on a
    # real disk the fsync-heavy ingest is dominated by writeback
    # scheduling whose heavy tail swamps a few-percent signal.
    if os.path.isdir("/dev/shm") and os.access("/dev/shm", os.W_OK):
        base = pathlib.Path(
            tempfile.mkdtemp(prefix="repro-bench-obs-", dir="/dev/shm")
        )
    else:
        base = tmp_path
    counter = {"n": 0}

    def run(obs_factory):
        counter["n"] += 1
        directory = base / f"run-{counter['n']}"
        try:
            return _ingest(records, directory, obs_factory())
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    run(lambda: NULL_OBS)  # warm both arms (and the page cache)
    run(Observability)
    try:
        nulls, obss, pct, detail, attempts = _measure_path(
            lambda: run(lambda: NULL_OBS),
            lambda: run(Observability),
            STORE_PAIRS,
            emit,
            "store",
        )
    finally:
        if base is not tmp_path:
            shutil.rmtree(base, ignore_errors=True)
    n = len(records)
    _OBS_STATS["store_null_rps"] = n / min(nulls)
    _OBS_STATS["store_obs_rps"] = n / min(obss)
    _OBS_STATS["store_overhead_pct"] = max(0.0, pct)
    _OBS_STATS["store_noise_floor_pct"] = max(0.0, -pct)
    _OBS_STATS["store_overhead_pct_min_ratio"] = detail["min_ratio"]
    _OBS_STATS["store_overhead_pct_median_pair"] = detail["median_pair"]
    _OBS_STATS["store_overhead_pct_p25_pair"] = detail["p25_pair"]
    _OBS_STATS["store_attempts"] = attempts
    _OBS_STATS["n_records"] = n
    emit(
        f"store ingest: {_OBS_STATS['store_null_rps']:,.0f} rec/s "
        f"(NULL_OBS) vs {_OBS_STATS['store_obs_rps']:,.0f} rec/s "
        f"(instrumented), best of {STORE_PAIRS} interleaved pairs"
    )


# ----------------------------------------------------------------------
# Report: persist the trajectory, gate the ceiling
# ----------------------------------------------------------------------
def test_obs_overhead_report(emit):
    """Summarise both paths and fail if instrumentation got expensive."""
    needed = ("engine_overhead_pct", "store_overhead_pct")
    if any(key not in _OBS_STATS for key in needed):
        pytest.skip("overhead benchmarks did not run")

    engine_pct = _OBS_STATS["engine_overhead_pct"]
    store_pct = _OBS_STATS["store_overhead_pct"]
    _OBS_STATS["max_overhead_pct"] = MAX_OVERHEAD_PCT
    _OBS_STATS["noise_floor_pct"] = max(
        _OBS_STATS["engine_noise_floor_pct"],
        _OBS_STATS["store_noise_floor_pct"],
    )
    _OBS_STATS["trace_sample_n"] = _trace_sample_n()
    _OBS_STATS["methodology"] = METHODOLOGY

    payload = dict(_OBS_STATS)
    with open(_JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    trace_note = (
        f", tracing 1-in-{_OBS_STATS['trace_sample_n']}"
        if _OBS_STATS["trace_sample_n"]
        else ""
    )
    emit(
        "\n".join(
            [
                f"obs overhead (written to {_JSON_PATH}"
                f"; noise floor {_OBS_STATS['noise_floor_pct']:.2f}%"
                f"{trace_note}):",
                f"  engine: {_OBS_STATS['engine_null_cps']:,.0f} -> "
                f"{_OBS_STATS['engine_obs_cps']:,.0f} conn/s "
                f"({engine_pct:+.2f}% overhead; min-ratio "
                f"{_OBS_STATS['engine_overhead_pct_min_ratio']:+.2f}%, "
                f"median-pair "
                f"{_OBS_STATS['engine_overhead_pct_median_pair']:+.2f}%, "
                f"p25-pair "
                f"{_OBS_STATS['engine_overhead_pct_p25_pair']:+.2f}%)",
                f"  store:  {_OBS_STATS['store_null_rps']:,.0f} -> "
                f"{_OBS_STATS['store_obs_rps']:,.0f} rec/s "
                f"({store_pct:+.2f}% overhead; min-ratio "
                f"{_OBS_STATS['store_overhead_pct_min_ratio']:+.2f}%, "
                f"median-pair "
                f"{_OBS_STATS['store_overhead_pct_median_pair']:+.2f}%, "
                f"p25-pair "
                f"{_OBS_STATS['store_overhead_pct_p25_pair']:+.2f}%)",
            ]
        )
    )

    # Always: instrumentation must never cost a meaningful fraction of
    # throughput, even on a noisy machine.
    assert engine_pct < 25.0, (
        f"observability overhead on the engine path hit {engine_pct:.1f}% "
        "-- span timers are no longer cheap"
    )
    assert store_pct < 25.0, (
        f"observability overhead on the store path hit {store_pct:.1f}% "
        "-- span timers are no longer cheap"
    )
    if _strict_gate():
        assert engine_pct <= MAX_OVERHEAD_PCT, (
            f"engine-path overhead {engine_pct:.2f}% exceeds the "
            f"{MAX_OVERHEAD_PCT}% ceiling in two independent measurements"
        )
        assert store_pct <= MAX_OVERHEAD_PCT, (
            f"store-path overhead {store_pct:.2f}% exceeds the "
            f"{MAX_OVERHEAD_PCT}% ceiling in two independent measurements"
        )
