"""§4.2 validation: scanners and benign lookalikes.

The paper gauges scanner pollution with the Hiesgen heuristics: ~0.05%
of connections with arrival TTL ≥ 200, essentially none without TCP
options (in their data), and ~1% of ⟨SYN → RST⟩ matches attributable to
ZMap.  Reproduced in shape: lookalike clients are a tiny share of all
connections, scanner heuristics isolate them, and removing heuristic
hits barely changes country-level results.
"""

from repro.core.evidence import looks_like_scanner, looks_like_zmap
from repro.core.model import SignatureId
from repro.core.report import render_table


def _scan_stats(dataset, samples_by_id):
    flagged_scanner = flagged_zmap = 0
    syn_rst = syn_rst_zmap = 0
    for conn in dataset:
        sample = samples_by_id[conn.conn_id]
        scanner = looks_like_scanner(sample)
        zmap = looks_like_zmap(sample)
        flagged_scanner += scanner
        flagged_zmap += zmap
        if conn.signature == SignatureId.SYN_RST:
            syn_rst += 1
            syn_rst_zmap += zmap
    return {
        "scanner": flagged_scanner,
        "zmap": flagged_zmap,
        "syn_rst": syn_rst,
        "syn_rst_zmap": syn_rst_zmap,
    }


def test_validation_scanner_heuristics(benchmark, dataset, study, emit):
    samples_by_id = {s.conn_id: s for s in study.samples}
    stats = benchmark(_scan_stats, dataset, samples_by_id)

    total = len(dataset)
    rows = [
        ["connections", total, ""],
        ["scanner-heuristic hits", stats["scanner"], f"{100 * stats['scanner'] / total:.2f}%"],
        ["ZMap-signature hits", stats["zmap"], f"{100 * stats['zmap'] / total:.2f}%"],
        ["⟨SYN → RST⟩ matches", stats["syn_rst"], ""],
        ["  ...attributable to ZMap", stats["syn_rst_zmap"],
         f"{100 * stats['syn_rst_zmap'] / max(1, stats['syn_rst']):.1f}%"],
    ]
    emit(render_table(["metric", "count", "share"], rows,
                      title="§4.2 validation: scanner pollution"))

    # Shape: scanners are rare and do not dominate SYN→RST.
    assert stats["scanner"] / total < 0.05
    if stats["syn_rst"]:
        assert stats["syn_rst_zmap"] / stats["syn_rst"] < 0.5

    # Precision of the heuristics: every ZMap hit really was a scanner.
    for conn in dataset:
        if looks_like_zmap(samples_by_id[conn.conn_id]):
            assert conn.truth_client_kind == "zmap"


def test_validation_lookalikes_dont_move_country_rates(benchmark, dataset, study, emit):
    samples_by_id = {s.conn_id: s for s in study.samples}

    def filtered_rates():
        kept = dataset.filter(lambda c: not looks_like_scanner(samples_by_id[c.conn_id]))
        return kept.country_tampering_rate()

    filtered = benchmark(filtered_rates)
    unfiltered = dataset.country_tampering_rate()

    rows = []
    for country in ("TM", "CN", "IR", "RU", "US"):
        if country in unfiltered and country in filtered:
            rows.append([country, unfiltered[country], filtered[country]])
    emit(render_table(["country", "all connections %", "scanner-filtered %"], rows,
                      title="Country tampering rate with vs without scanner-heuristic hits"))

    for country, before, after in rows:
        assert abs(before - after) < 5.0, country
