"""Table 2: content categories affected by Post-PSH tampering.

Per region: the top-3 categories by share of tampered connections, each
with its category coverage (tampered domains in the category as a share
of the category's domains seen from the region).  Paper anchors
reproduced in shape: Adult Themes dominates CN/IN/KR with high coverage;
Advertisements dominates MX/PE; Content Servers leads in IR; in the
US/DE/GB the top categories account for much of the (rare) tampering
while coverage stays near zero.
"""

from repro.core.report import render_table

REGIONS = ("CN", "IN", "IR", "KR", "MX", "PE", "RU", "US", "DE", "GB")

#: The category the paper reports as #1 for anchor regions.
PAPER_TOP_CATEGORY = {
    "CN": "Adult Themes",
    "IN": "Adult Themes",
    "KR": "Adult Themes",
    "MX": "Advertisements",
    "PE": "Advertisements",
    "IR": "Content Servers",
}

#: The paper thresholds at 100 matches/day on billions of connections;
#: this sample is ~6 orders of magnitude smaller, so the scaled-down
#: threshold is one match per day.
THRESHOLD = 1


def test_table2_category_analysis(benchmark, dataset, study, emit):
    table = benchmark(
        dataset.category_table,
        study.world.categories,
        REGIONS,
        THRESHOLD,
    )

    rows = []
    for region, entries in table.items():
        for category, share, coverage in entries:
            rows.append([region, category, share, coverage])
    emit(render_table(
        ["region", "category", "% of tampered conns", "% of category domains tampered"],
        rows,
        title="Table 2: most affected categories per region",
    ))

    measured_top = {region: (entries[0][0] if entries else None) for region, entries in table.items()}
    anchor_rows = [[r, PAPER_TOP_CATEGORY[r], measured_top.get(r)] for r in PAPER_TOP_CATEGORY]
    emit(render_table(["region", "paper top category", "measured top category"], anchor_rows,
                      title="Anchor categories (paper vs measured)"))

    hits = sum(1 for r, cat in PAPER_TOP_CATEGORY.items() if measured_top.get(r) == cat)
    assert hits >= len(PAPER_TOP_CATEGORY) - 2, f"only {hits} anchors matched: {measured_top}"

    # Shape: heavy censors show substantial coverage of their top
    # category; the West shows near-zero coverage.
    def top_coverage(region):
        entries = table.get(region, [])
        return entries[0][2] if entries else 0.0

    assert top_coverage("CN") > 10.0
    for western in ("US", "DE", "GB"):
        if table.get(western):
            assert top_coverage(western) < top_coverage("CN") / 2.0, western
