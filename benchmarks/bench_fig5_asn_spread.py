"""Figure 5: per-AS match proportions within each country.

For each country, the percentage of connections matching any signature
in each of its large ASes (those collectively originating 80% of the
country's connections).  Paper observation reproduced in shape:
countries with centralized censorship (CN, IR) show a tight per-AS
spread; decentralized regimes (RU, UA, PK) and lightly-filtered Western
countries show wide spreads.
"""

from repro.core.report import render_table


def test_fig5_asn_match_proportions(benchmark, dataset, emit):
    per_asn = benchmark(dataset.asn_match_proportions, 0.8, 60)
    spreads = dataset.asn_spread(0.8, min_connections=60)

    rows = []
    for country in ("TM", "CN", "IR", "RU", "UA", "PK", "MX", "US", "DE", "GB", "KR"):
        if country not in per_asn or not per_asn[country]:
            continue
        rates = [rate for _, rate, _ in per_asn[country]]
        rows.append([
            country,
            len(rates),
            min(rates),
            max(rates),
            spreads.get(country, 0.0),
        ])
    emit(render_table(["country", "top ASes", "min match %", "max match %", "spread"],
                      rows, title="Figure 5: per-AS match proportion (top-80% ASes)"))

    # Shape: the decentralized group (RU, UA, PK) spreads wider than the
    # centralized group (CN, IR) on average, and Russia in particular is
    # wider than China (the paper's headline contrast).
    def group_mean(codes):
        values = [spreads[c] for c in codes if len(per_asn.get(c, [])) >= 3]
        return sum(values) / len(values) if values else None

    centralized = group_mean(("CN", "IR"))
    decentralized = group_mean(("RU", "UA", "PK"))
    if centralized is not None and decentralized is not None:
        assert decentralized > centralized, (centralized, decentralized)
    if len(per_asn.get("RU", [])) >= 3 and len(per_asn.get("CN", [])) >= 3:
        assert spreads["RU"] > spreads["CN"]
