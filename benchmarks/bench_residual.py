"""Residual censorship: measuring the windows by timed probing.

Appendix B cites residual blocking among the explanations for signature
churn on repeat visits, and §6 argues active measurement can "trigger
events and test hypotheses".  This benchmark does exactly that against
our censor models: trigger each vendor once, probe the same
(client, server) pair with *innocent* requests at increasing delays, and
recover each device's configured residual window from the probe
responses alone.
"""

from repro.active.residual import measure_residual_window
from repro.core.report import render_table
from repro.middlebox.policy import BlockPolicy, DomainRule
from repro.middlebox.vendors import make_preset

#: vendor -> configured residual_seconds (ground truth to recover).
VENDORS = {
    "gfw": 90.0,
    "gfw_double_rstack": 90.0,
    "single_rst": 60.0,
    "korea_guesser": 60.0,
    "iran_drop": 30.0,
    "iran_rstack": 30.0,
    "psh_blackhole": 30.0,
    "enterprise_rst": 0.0,
}

DELAYS = (5, 15, 25, 35, 45, 55, 65, 75, 85, 95, 110, 130)


def test_residual_windows(benchmark, emit):
    def sweep():
        out = {}
        for vendor in VENDORS:
            device = make_preset(vendor, BlockPolicy([DomainRule(["blocked.example"])]), seed=9)
            out[vendor] = measure_residual_window(device, delays=DELAYS)
        return out

    measurements = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for vendor, configured in VENDORS.items():
        m = measurements[vendor]
        rows.append([
            vendor,
            configured or "-",
            m.estimated_window if m.estimated_window is not None else "none observed",
            m.first_unblocked if m.first_unblocked is not None else "-",
        ])
    emit(render_table(
        ["vendor", "configured window (s)", "last blocked probe (s)", "first clear probe (s)"],
        rows,
        title="Residual censorship windows, recovered by active probing",
    ))

    for vendor, configured in VENDORS.items():
        m = measurements[vendor]
        if configured == 0.0:
            assert m.estimated_window is None, vendor
            continue
        assert m.estimated_window is not None, vendor
        # The sweep brackets the configured window.
        assert m.estimated_window <= configured <= (m.first_unblocked or float("inf")), (
            vendor, m.estimated_window, m.first_unblocked
        )
