"""Soak benchmark: the hardened stream pipeline under sustained faults.

Runs the same sample stream three ways -- clean serial, through a flaky
source (seeded errors / torn lines / stalls / duplicates), and through a
sharded pool whose worker is killed mid-stream -- and reports the
overhead the fault-handling machinery costs when things actually break.
Parity with the clean rollup is asserted on every path: a soak run that
drifts is a failure, not a data point.
"""

from repro.stream import (
    FaultPlan,
    FaultySource,
    IterableSource,
    ShardConfig,
    StreamEngine,
    WorkerChaos,
)

SOAK_SAMPLES = 2000


def _source(study):
    return IterableSource(
        study.samples[:SOAK_SAMPLES], timestamps=study.timestamps
    )


def _clean(study):
    return StreamEngine(_source(study), geodb=study.geo, n_workers=0).run()


def test_soak_clean_baseline(benchmark, study, emit):
    report = benchmark.pedantic(lambda: _clean(study), rounds=1, iterations=1)
    emit(
        f"soak baseline: {report.rollup.n_records} records, "
        f"{report.metrics['samples_per_second']:,.0f} samples/s"
    )
    assert report.finished


def test_soak_flaky_source(benchmark, study, emit):
    clean = _clean(study).rollup.to_dict()
    plan = FaultPlan.generate(
        13,
        SOAK_SAMPLES,
        error_rate=0.02,
        truncate_rate=0.01,
        duplicate_rate=0.02,
        stall_rate=0.002,
        stall_seconds=0.0005,
    )

    def soak():
        source = FaultySource(_source(study), plan)
        report = StreamEngine(
            source,
            geodb=study.geo,
            n_workers=0,
            max_source_retries=10,
            retry_backoff_seconds=0.0005,
        ).run()
        return source, report

    source, report = benchmark.pedantic(soak, rounds=1, iterations=1)
    assert report.rollup.to_dict() == clean, "flaky-source soak lost parity"
    emit(
        f"soak flaky-source: {len(plan)} faults planned, "
        f"{sum(source.injected.values())} fired, "
        f"{report.metrics['source_retries']} retries, "
        f"{report.metrics['duplicates_dropped']} dups dropped, "
        f"{report.metrics['samples_per_second']:,.0f} samples/s"
    )


def test_soak_worker_kill(benchmark, study, emit):
    clean = _clean(study).rollup.to_dict()

    def soak():
        return StreamEngine(
            _source(study),
            geodb=study.geo,
            n_workers=2,
            shard_config=ShardConfig(
                n_workers=2,
                batch_size=32,
                max_inflight=128,
                poll_seconds=0.05,
                max_restarts=2,
            ),
            worker_chaos=WorkerChaos(worker_id=0, after_batches=4, mode="kill9"),
        ).run()

    report = benchmark.pedantic(soak, rounds=1, iterations=1)
    assert report.rollup.to_dict() == clean, "kill-worker soak lost parity"
    assert report.metrics["forced_terminations"] == 0
    emit(
        f"soak kill-worker: {report.metrics['worker_restarts']} restart(s), "
        f"{report.metrics['forced_terminations']} forced terminations, "
        f"{report.metrics['samples_per_second']:,.0f} samples/s"
    )
