"""Device fingerprinting over the global study (the Weaver §2.3 step).

Clusters every RST-bearing tampering event by its observable header
personality (signature + TTL behaviour + IP-ID behaviour) and labels the
clusters against the known-device catalogue.  Shape claims: clusters are
vendor-pure (one fingerprint ⇒ one device type, the premise of the
paper's "researchers often associate new censorship fingerprints
directly with the deployment of new middleboxes"), and the big clusters
map to catalogued behaviours.
"""

from repro.core.fingerprint import FingerprintIndex
from repro.core.report import render_table


def test_fingerprint_clusters(benchmark, study, results, emit):
    index = benchmark(
        FingerprintIndex.build, study.samples, results, study.world.geo
    )

    clusters = index.clusters(min_count=10)
    rows = []
    for cluster in clusters[:14]:
        top_countries = ", ".join(c for c, _ in cluster.countries.most_common(3))
        rows.append([
            cluster.fingerprint.signature.display,
            cluster.fingerprint.ttl.value,
            cluster.fingerprint.ip_id.value,
            cluster.count,
            cluster.label,
            f"{100 * cluster.purity:.0f}%",
            top_countries,
        ])
    emit(render_table(
        ["signature", "ttl", "ip-id", "events", "catalogue label", "vendor purity", "top countries"],
        rows,
        title="Middlebox fingerprints (clusters with ≥10 events)",
    ))

    assert clusters, "expected fingerprintable tampering events"
    # One fingerprint ⇒ (almost always) one device type.  Clusters with
    # no vendor events are organic client RSTs (scanners, Happy-Eyeballs,
    # abortive closes) -- their tell is mimic/consistent headers.
    impure = [
        c for c in clusters
        if c.count >= 20 and c.dominant_vendor is not None and c.purity < 0.7
    ]
    assert not impure, [c.fingerprint.describe() for c in impure]
    for cluster in clusters:
        if cluster.count >= 20 and cluster.dominant_vendor is None:
            assert cluster.fingerprint.ttl.value in ("mimic", "unknown"), (
                "vendor-less clusters must look client-generated"
            )
    # The catalogue recognises the major injector families.
    recognised = sum(1 for c in clusters if c.label != "unrecognised device")
    assert recognised >= min(4, len(clusters))
