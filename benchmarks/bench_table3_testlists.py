"""Table 3: test-list coverage of passively-detected tampered domains.

For each region, the share of tampered domains (Post-PSH matches above
threshold) that each test list would have covered, under eTLD+1-exact
and substring matching.  Paper observations reproduced in shape:

* curated censorship lists (Citizen Lab, GreatFire) miss most tampered
  domains;
* popularity lists improve with size; the union of all lists covers the
  most;
* substring matching beats exact matching everywhere.
"""

from repro.core.report import render_table
from repro.core.testlists import coverage_table, union_list
from repro.workloads.testlist_gen import build_test_lists

REGIONS = ("CN", "IN", "IR", "KR", "MX", "PE", "RU", "US")
THRESHOLD = 1


def _tampered_by_region(dataset):
    out = {"Global": dataset.tampered_domains(threshold=THRESHOLD)}
    for region in REGIONS:
        out[region] = dataset.tampered_domains(country=region, threshold=THRESHOLD)
    return out


def test_table3_testlist_coverage(benchmark, dataset, study, emit):
    lists = build_test_lists(
        study.world.universe,
        seed=7,
        country_blocklists={code: sorted(study.world.blocklist(code))
                            for code in study.world.country_codes},
    )
    curated_union = union_list("Union: Citizenlab + Greatfire",
                               [lists["Citizenlab"], lists["Greatfire_all"]])
    all_union = union_list("Union: All lists", list(lists.values()))
    battery = list(lists.values()) + [curated_union, all_union]

    tampered = _tampered_by_region(dataset)
    table = benchmark(coverage_table, tampered, battery)

    columns = ["Global"] + [r for r in REGIONS if tampered.get(r)]
    rows = []
    for lst in battery:
        rows.append([lst.name, len(lst)] + [table[(lst.name, region)].pct_exact for region in columns])
    rows.append(["Substring: All lists", len(all_union)]
                + [table[("Union: All lists", region)].pct_substring for region in columns])
    emit(render_table(["list", "entries"] + list(columns), rows,
                      title=f"Table 3: % of tampered domains covered (exact eTLD+1; threshold={THRESHOLD})",
                      float_format="{:.1f}"))

    g = lambda name: table[(name, "Global")]

    # Shape 1: curated lists miss many tampered domains.
    assert g("Citizenlab").pct_exact < 60.0
    assert g("Greatfire_all").pct_exact < 70.0

    # Shape 2: popularity tiers grow with size; the all-list union wins.
    tranco = [g(f"Tranco_{tier}").pct_exact for tier in ("1K", "10K", "100K", "1M")]
    assert tranco == sorted(tranco)
    assert g("Union: All lists").pct_exact >= max(
        g(lst.name).pct_exact for lst in lists.values()
    )

    # Shape 3: Majestic trails Tranco at equal tier.
    assert g("Majestic_1M").pct_exact <= g("Tranco_1M").pct_exact

    # Shape 4: substring matching is at least as good as exact.
    assert g("Union: All lists").pct_substring >= g("Union: All lists").pct_exact

    # Shape 5: even the best case leaves a gap somewhere (the paper's
    # motivating result: passive detection finds domains lists miss).
    assert g("Union: Citizenlab + Greatfire").pct_exact < 100.0
