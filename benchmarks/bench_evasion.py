"""§6 evasion: detection rate per censor strategy.

The paper's concluding remarks argue that evading passive detection
requires an in-path censor that blocks server→client content while
impersonating the client toward the server.  This benchmark quantifies
the claim: every standard vendor preset is detected at ~100% on blocked
flows, while the evasive strategy is detected at 0% -- even though the
client receives nothing in both cases.
"""

from repro.core.classifier import TamperingClassifier
from repro.core.report import render_table
from repro.middlebox.policy import BlockPolicy, DomainRule, ExactIpRule
from repro.middlebox.vendors import make_preset
from repro.netstack.tcp import TcpState
from tests.conftest import SERVER_IP, capture, make_client, run_connection

VENDORS = (
    "gfw", "single_rst", "iran_drop", "iran_rstack", "psh_blackhole",
    "korea_guesser", "zero_ack_injector", "syn_blackhole", "evasive_censor",
)
_SYN_STAGE = {"syn_blackhole", "syn_rst_injector", "syn_rstack_injector", "gfw_syn"}
TRIALS = 20


def _detection_rate(vendor: str) -> tuple:
    classifier = TamperingClassifier()
    detected = censored = 0
    for seed in range(TRIALS):
        rule = ExactIpRule([SERVER_IP]) if vendor in _SYN_STAGE else DomainRule(["blocked.example"])
        device = make_preset(vendor, BlockPolicy([rule]), seed=seed)
        client = make_client(seed=seed)
        result = run_connection(client, middleboxes=[device],
                                server_port=client.peer_port, seed=seed)
        # Censored = the client never completed the transfer gracefully.
        if client.state != TcpState.TIME_WAIT:
            censored += 1
        sample = capture(result, conn_id=seed)
        if sample is not None and classifier.classify(sample).is_tampering:
            detected += 1
    return detected / TRIALS, censored / TRIALS


def test_evasion_detection_rates(benchmark, emit):
    def sweep():
        return {vendor: _detection_rate(vendor) for vendor in VENDORS}

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [vendor, f"{100 * censored:.0f}%", f"{100 * detected:.0f}%"]
        for vendor, (detected, censored) in rates.items()
    ]
    emit(render_table(
        ["censor strategy", "client blocked", "passively detected"],
        rows,
        title="§6: detection rate per strategy (blocked flows only)",
    ))

    for vendor, (detected, censored) in rates.items():
        assert censored >= 0.95, f"{vendor} failed to censor"
        if vendor == "evasive_censor":
            assert detected == 0.0, "the §6 strategy must evade passive detection"
        else:
            assert detected >= 0.9, f"{vendor} should be detected"
