"""Ablation benchmarks for DESIGN.md §5 design decisions.

* Order reconstruction vs trusting stored order: agreement rate.
* Inactivity threshold sweep (1-10 s): possibly-tampered sensitivity.
* First-10-packets truncation: verdicts at max_packets 10 vs 20.
"""

from repro.core.classifier import ClassifierConfig, TamperingClassifier
from repro.core.report import render_table


def test_ablation_order_reconstruction(benchmark, study, emit):
    with_reorder = TamperingClassifier(ClassifierConfig(reorder=True))
    without = TamperingClassifier(ClassifierConfig(reorder=False))

    def agreement():
        agree = 0
        for sample in study.samples:
            if with_reorder.classify(sample).signature == without.classify(sample).signature:
                agree += 1
        return agree / len(study.samples)

    rate = benchmark(agreement)
    emit(f"ablation: reorder vs stored order agreement = {100 * rate:.2f}%")
    # The post-PSH/post-data split depends on what follows the first data
    # packet, so order reconstruction genuinely matters for shuffled
    # captures -- the ablation shows a measurable (but bounded) gap.
    assert rate > 0.90


def test_ablation_inactivity_sweep(benchmark, study, emit):
    thresholds = (1.0, 2.0, 3.0, 5.0, 8.0, 10.0)

    def sweep():
        out = []
        for t in thresholds:
            classifier = TamperingClassifier(ClassifierConfig(inactivity_seconds=t))
            flagged = sum(
                1 for s in study.samples if classifier.classify(s).possibly_tampered
            )
            out.append((t, 100.0 * flagged / len(study.samples)))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(render_table(["threshold (s)", "possibly tampered %"],
                      [[t, pct] for t, pct in results],
                      title="Ablation: inactivity threshold sweep"))
    percentages = [pct for _, pct in results]
    assert all(a >= b for a, b in zip(percentages, percentages[1:])), "must be monotone"
    # The 3 s operating point sits on a plateau: RST-based signatures
    # dominate, so the sweep moves the rate only modestly.
    assert percentages[0] - percentages[-1] < 20.0


def test_ablation_capture_depth(benchmark, study, emit):
    ten = TamperingClassifier(ClassifierConfig(max_packets=10))
    twenty = TamperingClassifier(ClassifierConfig(max_packets=20))

    def compare():
        changed = 0
        for sample in study.samples:
            if ten.classify(sample).signature != twenty.classify(sample).signature:
                changed += 1
        return changed / len(study.samples)

    rate = benchmark(compare)
    emit(f"ablation: verdict changes when interpreting capture depth 20 vs 10 = {100 * rate:.2f}%")
    assert rate < 0.05
