"""Figure 2: maximum absolute IP-ID change between RSTs and preceding
packets, per signature (up to 1,000 IPv4 connections per signature).

Paper observations reproduced in shape: the Not-Tampering baseline has
max deltas ≤ 1 for >95% of connections, while most RST-injection
signatures show large deltas for 40-100% of matches; stealthy vendors
that copy the client IP-ID (e.g. the ⟨PSH+ACK → RST+ACK⟩ family here)
sit near the baseline.
"""

from collections import defaultdict

from repro.core.evidence import max_ipid_delta
from repro.core.report import render_cdf
from repro.core.sequence import reconstruct_order

MAX_PER_SIGNATURE = 1000


def _collect(dataset, study):
    by_id = {s.conn_id: s for s in study.samples}
    series = defaultdict(list)
    for conn in dataset:
        if conn.ip_version != 4:
            continue
        sample = by_id[conn.conn_id]
        if conn.tampered:
            key = conn.signature.display
        elif not conn.possibly_tampered:
            key = "Not Tampering"
        else:
            continue
        if len(series[key]) >= MAX_PER_SIGNATURE:
            continue
        if conn.tampered:
            delta = max_ipid_delta(sample)
        else:
            # Baseline: max consecutive delta over the whole connection,
            # in reconstructed order (stored order shuffles within 1 s).
            ordered = reconstruct_order(sample.packets)
            if len(ordered) < 2:
                continue
            delta = max(abs(b.ip_id - a.ip_id) for a, b in zip(ordered, ordered[1:]))
        if delta is not None:
            series[key].append(float(delta))
    return dict(series)


def test_fig2_ipid_deltas(benchmark, dataset, study, emit):
    series = benchmark(_collect, dataset, study)
    emit(render_cdf(series, title="Figure 2: max |ΔIP-ID| between RST and preceding packet",
                    quantiles=(25, 50, 75, 90, 99)))

    baseline = series.get("Not Tampering", [])
    assert baseline, "no baseline connections collected"
    small = sum(1 for v in baseline if v <= 1)
    assert small / len(baseline) > 0.80, "baseline IP-IDs should be consistent"

    # At least several injection signatures show large deltas for a
    # sizeable fraction of their matches.
    strong = 0
    for name, values in series.items():
        if name == "Not Tampering" or len(values) < 5:
            continue
        large = sum(1 for v in values if v > 100)
        if large / len(values) > 0.4:
            strong += 1
    assert strong >= 3, "expected multiple signatures with inconsistent IP-IDs"
