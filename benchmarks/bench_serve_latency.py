"""Closed-loop latency/throughput benchmark for the serve tier.

Not a paper artifact -- this measures :mod:`repro.serve`: an in-process
:class:`ServeService` (real asyncio listener on a loopback port, real
HTTP) under a closed-loop load of concurrent :class:`ServeClient`
threads.  Each client partition of the study is POSTed through
``/v1/samples`` with honest ``Retry-After`` backoff, so the measured
rate is the *sustained admitted* ingest rate, with backpressure
rejections (429) counted rather than hidden.  After ingest drains, the
read path is sampled: ``/v1/query`` per family, ``/v1/anomalies``, and
a ``/metrics`` scrape.

Writes ``BENCH_serve_latency.json`` (path override:
``REPRO_BENCH_SERVE_JSON``) so CI can track the serving tier as a
trajectory; the report test is also the regression gate -- it fails
the job if the service stops sustaining ingest (rate 0), if any
latency percentile degenerates to 0, or if the drain loses records.
"""

import json
import os
import threading
import time

from repro.serve import RetryLater, ServeClient, ServeConfig, ServeService

_JSON_PATH = os.environ.get("REPRO_BENCH_SERVE_JSON", "BENCH_serve_latency.json")

N_CLIENTS = int(os.environ.get("REPRO_BENCH_SERVE_CLIENTS", "4"))
POST_BATCH = int(os.environ.get("REPRO_BENCH_SERVE_BATCH", "256"))
N_QUERIES = int(os.environ.get("REPRO_BENCH_SERVE_QUERIES", "50"))

_FAMILIES = ("country_tampering_rate", "timeseries", "stage_statistics")

#: Sealing grace for the ingest phase.  The engine's contract is
#: roughly time-ordered ingest: a record whose bucket is already sealed
#: is dropped.  Unsynchronized closed-loop clients admit into a deep
#: queue, so their study-clock skew is bounded only by the whole study
#: span -- the grace is therefore set *wider than the study* so no
#: bucket can seal while ingest is in flight, making out-of-order
#: drops impossible by construction.  Sealing happens at drain; the
#: read-path phase then runs against a second service resumed on the
#: same (fully sealed) store, which also exercises restart.
GRACE_SECONDS = float(os.environ.get("REPRO_BENCH_SERVE_GRACE", 32 * 86400))


def _percentile(sorted_values, q):
    """Exact percentile by rank over raw measurements (not buckets)."""
    if not sorted_values:
        return 0.0
    rank = (q / 100.0) * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = rank - low
    return sorted_values[low] * (1 - fraction) + sorted_values[high] * fraction


def _latency_stats(samples_ms):
    ordered = sorted(samples_ms)
    return {
        "n": len(ordered),
        "p50_ms": _percentile(ordered, 50.0),
        "p99_ms": _percentile(ordered, 99.0),
        "max_ms": ordered[-1] if ordered else 0.0,
    }


class _IngestWorker(threading.Thread):
    """One closed-loop client: POST a partition, back off on 429."""

    def __init__(self, port, client_id, samples, timestamps, post_batch):
        super().__init__(name=f"bench-client-{client_id}")
        self.port = port
        self.client_id = client_id
        self.samples = samples
        self.timestamps = timestamps
        self.post_batch = post_batch
        self.latencies_ms = []
        self.rejected = 0
        self.accepted = 0
        self.error = None

    def run(self):
        client = ServeClient(port=self.port, client_id=self.client_id)
        try:
            for start in range(0, len(self.samples), self.post_batch):
                batch = self.samples[start:start + self.post_batch]
                while True:
                    tick = time.perf_counter()
                    try:
                        result = client.post_samples(
                            batch, timestamps=self.timestamps
                        )
                    except RetryLater as exc:
                        self.rejected += 1
                        time.sleep(min(exc.retry_after, 0.05))
                        continue
                    self.latencies_ms.append(
                        1000.0 * (time.perf_counter() - tick)
                    )
                    self.accepted += result["accepted"]
                    break
        except Exception as exc:  # surfaced by the main thread
            self.error = exc
        finally:
            client.close()


def _boot(store_dir, geodb):
    service = ServeService(
        store_dir,
        config=ServeConfig(
            port=0,
            batch_max_records=512,
            batch_max_delay_seconds=0.01,
            queue_max_records=4096,
        ),
        geodb=geodb,
        grace_seconds=GRACE_SECONDS,
    )
    thread = threading.Thread(target=service.run, daemon=True)
    thread.start()
    assert service.ready.wait(30), "service never became ready"
    return service, thread


def _shutdown(service, thread):
    service.request_shutdown_threadsafe()
    thread.join(timeout=60)
    assert not thread.is_alive(), "service failed to drain"
    assert service.report is not None
    return service.report


def test_serve_latency_report(study, tmp_path, capsys):
    """Boot, load, drain, resume; emit the serving-tier trajectory."""
    store_dir = str(tmp_path / "store")
    service, thread = _boot(store_dir, study.geo)

    # -- closed-loop ingest --------------------------------------------
    n = len(study.samples)
    post_batch = min(POST_BATCH, max(32, n // 16))
    workers = [
        _IngestWorker(
            service.port,
            f"bench-{i}",
            study.samples[i::N_CLIENTS],
            study.timestamps,
            post_batch,
        )
        for i in range(N_CLIENTS)
    ]
    wall_start = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    for worker in workers:
        assert worker.error is None, worker.error

    # Wait until every admitted record is folded, then measure the
    # wall clock: "sustained" includes the fold, not just the queueing.
    probe = ServeClient(port=service.port)
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        status = probe._json("GET", "/readyz")
        if status.get("folded", 0) >= n and status.get("queued") == 0:
            break
        time.sleep(0.01)
    ingest_wall = time.perf_counter() - wall_start
    probe.close()

    accepted = sum(w.accepted for w in workers)
    rejected = sum(w.rejected for w in workers)
    post_latencies = [ms for w in workers for ms in w.latencies_ms]
    total_posts = len(post_latencies) + rejected

    # Drain: seals every bucket and checkpoints; the gate below fails
    # the job if any admitted record was lost on the way to the store.
    report = _shutdown(service, thread)
    assert report.samples_processed == n, "drain lost records"

    # -- read path (second service, resumed on the sealed store) -------
    service, thread = _boot(store_dir, study.geo)
    probe = ServeClient(port=service.port)
    query_ms = {}
    for family in _FAMILIES:
        samples_ms = []
        for _ in range(N_QUERIES):
            tick = time.perf_counter()
            result = probe.query(family)
            samples_ms.append(1000.0 * (time.perf_counter() - tick))
            assert result["value"], f"{family} returned nothing"
        query_ms[family] = _latency_stats(samples_ms)
    scrape_ms = []
    for _ in range(N_QUERIES):
        tick = time.perf_counter()
        text = probe.metrics_text()
        scrape_ms.append(1000.0 * (time.perf_counter() - tick))
    assert "repro_serve_records_accepted_total" in text
    probe.close()
    _shutdown(service, thread)

    payload = {
        "clients": N_CLIENTS,
        "post_batch_records": post_batch,
        "records": n,
        "accepted_records": accepted,
        "ingest_wall_seconds": ingest_wall,
        "ingest_rps": accepted / ingest_wall if ingest_wall else 0.0,
        "post_latency": _latency_stats(post_latencies),
        "rejected_posts": rejected,
        "rejected_share": rejected / total_posts if total_posts else 0.0,
        "query_latency_ms": query_ms,
        "metrics_scrape": _latency_stats(scrape_ms),
    }
    with open(_JSON_PATH, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    # The regression gate: the tier must actually move records and the
    # clock must actually tick.
    assert accepted == n
    assert payload["ingest_rps"] > 0
    assert payload["post_latency"]["p99_ms"] > 0
    for family in _FAMILIES:
        assert query_ms[family]["p99_ms"] > 0

    with capsys.disabled():
        print(f"\nserve trajectory (written to {_JSON_PATH}):")
        print(
            f"  ingest: {payload['ingest_rps']:,.0f} records/s sustained "
            f"({N_CLIENTS} clients x {post_batch}-record POSTs, "
            f"{rejected} rejections, "
            f"{100.0 * payload['rejected_share']:.1f}% of posts)"
        )
        post = payload["post_latency"]
        print(
            f"  POST /v1/samples: p50 {post['p50_ms']:.2f} ms, "
            f"p99 {post['p99_ms']:.2f} ms"
        )
        for family, stats in query_ms.items():
            print(
                f"  GET /v1/query {family}: p50 {stats['p50_ms']:.2f} ms, "
                f"p99 {stats['p99_ms']:.2f} ms"
            )
        scrape = payload["metrics_scrape"]
        print(
            f"  GET /metrics: p50 {scrape['p50_ms']:.2f} ms, "
            f"p99 {scrape['p99_ms']:.2f} ms"
        )
