#!/usr/bin/env python
"""Case study: longitudinal view of Iran around September 2022 (Fig. 8).

Runs the Iran protest scenario -- 17 simulated days with blocking that
escalates after September 13 and peaks in the late evening -- and prints
the daily match-rate series per signature plus the network concentration
the paper observed (the spikes come from the largest mobile ISPs).

Run:
    python examples/iran_protests.py [n_connections]
"""

import sys
from collections import Counter

from repro import iran_protest_study
from repro.core.model import Stage
from repro.core.report import render_table, render_timeseries
from repro.workloads.scenarios import SEP_13_2022

_DAY = 86400.0
ALL_STAGES = (Stage.POST_SYN, Stage.POST_ACK, Stage.POST_PSH, Stage.POST_DATA)


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 6000
    print(f"Simulating 17 days of Iranian traffic ({n} sampled connections)...")
    study = iran_protest_study(n_connections=n, seed=13)
    data = study.analyze().in_countries(["IR"])
    print(f"  {len(data)} connections from IR networks\n")

    series = data.timeseries(bucket_seconds=_DAY, stages=ALL_STAGES, per_signature=True)
    top = dict(sorted(series.items(),
                      key=lambda kv: -max((v for _, v in kv[1]), default=0.0))[:5])
    print(render_timeseries(top, t0=SEP_13_2022, max_points=9,
                            title="Signature match % per day (Sep 13 = day 0)"))

    overall = data.timeseries(bucket_seconds=_DAY, stages=ALL_STAGES)["IR"]
    before = sum(pct for _, pct in overall[:1])
    after = max(pct for _, pct in overall[3:])
    print(f"\nmatch rate on day 0: {before:.1f}%   peak after escalation: {after:.1f}%")

    per_asn = Counter(c.asn for c in data if c.tampered)
    total_tampered = sum(per_asn.values())
    rows = [[f"AS{asn}", count, f"{100 * count / total_tampered:.1f}%"]
            for asn, count in per_asn.most_common(4)]
    print()
    print(render_table(["network", "tampered conns", "share"], rows,
                       title="Which networks carry the blocking (mobile ISPs dominate)"))

    # Evening concentration, as in the paper's §5.6.
    from repro.workloads.traffic import local_hour

    evening = [c for c in data if 18 <= local_hour(c.ts, 3.5) < 24]
    morning = [c for c in data if 6 <= local_hour(c.ts, 3.5) < 12]
    ev_rate = 100 * sum(c.tampered for c in evening) / max(1, len(evening))
    mo_rate = 100 * sum(c.tampered for c in morning) / max(1, len(morning))
    print(f"\ntampering in local evening hours: {ev_rate:.1f}%   "
          f"local morning hours: {mo_rate:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
