#!/usr/bin/env python
"""Audit active-measurement test lists against passive observations.

Reproduces the workflow behind the paper's Table 3: run the passive
pipeline, collect the domains actually being tampered with per region,
and measure what fraction each test list (Tranco / Majestic / GreatFire /
Citizen Lab tiers) would have covered -- under exact eTLD+1 matching and
under generous substring matching.

The punchline the paper reports, visible here too: curated censorship
lists miss a large share of the domains real users are being blocked
from, so passive detection can feed test-list construction.

Run:
    python examples/testlist_audit.py [n_connections]
"""

import sys

from repro import two_week_study
from repro.core.report import render_table
from repro.core.testlists import coverage_table, union_list
from repro.workloads.testlist_gen import build_test_lists

REGIONS = ("CN", "IN", "RU", "US")


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 8000
    print(f"Running the passive pipeline over {n} sampled connections...")
    study = two_week_study(n_connections=n, seed=7)
    data = study.analyze()

    tampered = {"Global": data.tampered_domains(threshold=1)}
    for region in REGIONS:
        tampered[region] = data.tampered_domains(country=region, threshold=1)
    print("tampered domains observed per region:",
          {k: len(v) for k, v in tampered.items()})

    lists = build_test_lists(
        study.world.universe, seed=7,
        country_blocklists={c: sorted(study.world.blocklist(c))
                            for c in study.world.country_codes},
    )
    battery = list(lists.values()) + [
        union_list("Union: Citizenlab + Greatfire",
                   [lists["Citizenlab"], lists["Greatfire_all"]]),
        union_list("Union: All lists", list(lists.values())),
    ]
    table = coverage_table(tampered, battery)

    regions = [r for r in ("Global",) + REGIONS if tampered[r]]
    rows = []
    for lst in battery:
        rows.append([lst.name, len(lst)]
                    + [f"{table[(lst.name, r)].pct_exact:.1f}" for r in regions])
    rows.append(["Substring: All lists", len(battery[-1])]
                + [f"{table[('Union: All lists', r)].pct_substring:.1f}" for r in regions])
    print()
    print(render_table(["list", "entries"] + list(regions), rows,
                       title="Table 3: % of tampered domains each list covers"))

    missed = tampered["Global"] - {
        d for d in tampered["Global"]
        if battery[-2].contains_exact(d)  # curated union
    }
    print(f"\nDomains being actively tampered with that the curated lists miss: "
          f"{len(missed)} of {len(tampered['Global'])}")
    for domain in sorted(missed)[:8]:
        print(f"  {domain}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
