#!/usr/bin/env python
"""Case study: the Great Firewall's RST bursts, packet by packet.

Builds a single censored path by hand -- a client in a censored network,
a GFW-style middlebox, and a CDN edge server -- then walks through what
the *server* observes: the handshake, the TLS ClientHello carrying the
forbidden SNI, and the forged RST / RST+ACK burst, including the IP-ID
and TTL inconsistencies that betray injection (paper §4.3).

Also demonstrates residual censorship: within the ~90-second window
after a trigger, the censor tears down *everything* from that client to
that server -- even a request for an innocent domain -- without
re-inspecting the SNI.  A different client (or the same one after the
window expires) sails through.

Run:
    python examples/gfw_case_study.py
"""

import sys

from repro.cdn.edge import EdgeConfig, make_edge_server
from repro.cdn.sampler import capture_sample
from repro.core.classifier import TamperingClassifier
from repro.core.evidence import evidence_for_sample
from repro.core.sequence import reconstruct_order
from repro.middlebox.policy import BlockPolicy, DomainRule
from repro.middlebox.vendors import gfw
from repro.netstack.tcp import HostConfig, TcpClient
from repro.netstack.tls import build_client_hello
from repro.network.conditions import NetworkConditions
from repro.network.sim import PathSimulator

BLOCKED_DOMAIN = "forbidden-news.example"
CLIENT_IP, SERVER_IP = "11.0.0.42", "198.41.9.9"


def run_connection(device, port, start, domain=BLOCKED_DOMAIN, client_ip=CLIENT_IP):
    client = TcpClient(
        HostConfig(ip=client_ip, port=port, isn=52_000, ip_id_start=7_000),
        SERVER_IP,
        443,
        request_segments=[build_client_hello(domain, seed=port)],
    )
    server = make_edge_server(SERVER_IP, EdgeConfig(port=443), seed=port)
    sim = PathSimulator(
        client, server, middleboxes=[device],
        conditions=NetworkConditions.simple(n_middleboxes=1, hops=16),
    )
    result = sim.run(start=start)
    return capture_sample(result, conn_id=port)


def describe(sample, classifier):
    result = classifier.classify(sample)
    print(f"  verdict: {result.signature.display}  (stage: {result.stage.value})")
    print(f"  trigger domain recovered from capture: {result.domain}")
    for pkt in reconstruct_order(sample.packets):
        marker = "  <-- forged" if pkt.injected else ""
        print(f"    {pkt.describe()}{marker}")
    evidence = evidence_for_sample(sample)
    print(f"  max |ΔIP-ID| vs preceding packet: {evidence.max_ipid_delta} "
          f"(inconsistent: {evidence.ipid_inconsistent})")
    print(f"  max ΔTTL vs preceding packet:     {evidence.max_ttl_delta} "
          f"(inconsistent: {evidence.ttl_inconsistent})")
    return result


def main() -> int:
    policy = BlockPolicy([DomainRule([BLOCKED_DOMAIN])], name="gfw-blocklist")
    device = gfw(policy, seed=99)
    classifier = TamperingClassifier()

    print(f"== Connection 1: client requests https://{BLOCKED_DOMAIN} ==")
    first = run_connection(device, port=40_001, start=100.0)
    r1 = describe(first, classifier)
    assert r1.is_tampering

    print("\n== Connection 2: same client retries 10 seconds later ==")
    print("   (residual censorship: the censor blocks the pair without re-matching)")
    second = run_connection(device, port=40_002, start=110.0)
    describe(second, classifier)

    print("\n== Connection 3: an INNOCENT domain, same client, 20 s later ==")
    print("   (residual collateral: the window blocks the pair regardless of content)")
    third = run_connection(device, port=40_003, start=120.0, domain="innocent.example")
    r3 = describe(third, classifier)
    assert r3.is_tampering

    print("\n== Connection 4: the innocent domain from a different client ==")
    fourth = run_connection(device, port=40_004, start=125.0,
                            domain="innocent.example", client_ip="11.0.0.43")
    r4 = describe(fourth, classifier)
    assert not r4.is_tampering

    print("\n== Connection 5: the same client, after the window expires ==")
    fifth = run_connection(device, port=40_005, start=260.0, domain="innocent.example")
    r5 = describe(fifth, classifier)
    assert not r5.is_tampering
    return 0


if __name__ == "__main__":
    sys.exit(main())
