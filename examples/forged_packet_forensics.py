#!/usr/bin/env python
"""Forensics: telling forged RSTs from real ones with IP-ID and TTL.

Compares four censor "header personalities" against an organic client
abort, showing how the §4.3 evidence separates them:

* the GFW burst (random IP-IDs, fixed unusual initial TTL),
* the Korean ACK-guesser (random TTL per packet),
* a stealthy enterprise device (copies the client's IP-ID, mimics TTL),
* an impatient real client RST-aborting its own connection.

Also writes a pcap of each capture so the traces can be opened in
Wireshark.

Run:
    python examples/forged_packet_forensics.py [output-dir]
"""

import os
import sys

from repro.cdn.edge import EdgeConfig, make_edge_server
from repro.cdn.sampler import capture_sample
from repro.core.classifier import TamperingClassifier
from repro.core.evidence import evidence_for_sample
from repro.core.report import render_table
from repro.middlebox.policy import BlockPolicy, DomainRule
from repro.middlebox.vendors import gfw, korea_guesser, single_rstack
from repro.netstack.pcap import write_pcap
from repro.netstack.tcp import HostConfig
from repro.netstack.tls import build_client_hello
from repro.network.conditions import NetworkConditions
from repro.network.endpoints import ImpatientClient
from repro.network.sim import PathSimulator
from repro.middlebox.actions import BlackholeMode
from repro.middlebox.device import TamperBehavior, TamperingMiddlebox

DOMAIN = "blocked.example"
CLIENT_IP, SERVER_IP = "11.0.0.77", "198.41.3.3"


def simulate(device, client=None, port=41_000):
    from repro.netstack.tcp import TcpClient

    if client is None:
        client = TcpClient(
            HostConfig(ip=CLIENT_IP, port=port, isn=9_000, ip_id_start=500),
            SERVER_IP, 443,
            request_segments=[build_client_hello(DOMAIN, seed=port)],
        )
    server = make_edge_server(SERVER_IP, EdgeConfig(port=443), seed=port)
    chain = [device] if device else []
    sim = PathSimulator(client, server, middleboxes=chain,
                        conditions=NetworkConditions.simple(n_middleboxes=len(chain), hops=15))
    return capture_sample(sim.run(start=10.0), conn_id=port)


def main() -> int:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else "."
    policy = BlockPolicy([DomainRule([DOMAIN])])
    classifier = TamperingClassifier()

    scenarios = {
        "gfw-burst": simulate(gfw(policy, seed=1), port=41_001),
        "korea-guesser": simulate(korea_guesser(policy, seed=2), port=41_002),
        "stealthy-enterprise": simulate(single_rstack(policy, seed=3), port=41_003),
    }
    # Organic abort: a stalling path (responses blackholed for all flows)
    # makes a real client give up with its own RST.
    stall = TamperingMiddlebox(
        BlockPolicy.everything(),
        TamperBehavior(blackhole=BlackholeMode.SERVER_TO_CLIENT),
        name="stalling-path",
    )
    impatient = ImpatientClient(
        HostConfig(ip=CLIENT_IP, port=41_004, isn=7, ip_id_start=900),
        SERVER_IP, 443,
        request_segments=[build_client_hello(DOMAIN, seed=4)],
        patience=0.3,
    )
    scenarios["organic-client-abort"] = simulate(stall, client=impatient, port=41_004)

    rows = []
    for name, sample in scenarios.items():
        result = classifier.classify(sample)
        ev = evidence_for_sample(sample)
        rows.append([
            name,
            result.signature.display,
            ev.max_ipid_delta if ev.max_ipid_delta is not None else "-",
            ev.max_ttl_delta if ev.max_ttl_delta is not None else "-",
            "yes" if (ev.ipid_inconsistent or ev.ttl_inconsistent) else "no",
        ])
        pcap_path = os.path.join(out_dir, f"forensics_{name}.pcap")
        write_pcap(pcap_path, sample.packets)
        print(f"wrote {pcap_path}")

    print()
    print(render_table(
        ["scenario", "signature", "max |ΔIP-ID|", "max ΔTTL", "header evidence of injection"],
        rows,
        title="Forged vs organic RSTs under the §4.3 evidence",
    ))
    print("\nNote how the stealthy device and the organic abort evade the header")
    print("evidence -- exactly why the paper treats IP-ID/TTL as supporting")
    print("evidence for the signature set rather than a classifier by itself.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
