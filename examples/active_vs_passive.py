#!/usr/bin/env python
"""Active vs passive: why the paper says you need both.

Runs the two measurement modalities over one synthetic world:

* an **active scan** -- probe a realistic test list (curated lists + a
  popularity tier) from two vantage points per country, observing the
  client side, answering "what *could* be blocked";
* the **passive pipeline** -- classify two weeks of sampled user traffic
  at the server, answering "what *is* being blocked for real users".

Then partitions each country's ground-truth blocklist by who can see
what, reproducing the complementarity argument of the paper's §6 --
including Iran's special case, where drop-based censorship hides the
trigger domains from the passive view.

Run:
    python examples/active_vs_passive.py [n_connections]
"""

import sys

from repro import two_week_study
from repro.active.compare import compare_coverage
from repro.active.prober import ActiveProber
from repro.core.report import render_table
from repro.workloads.testlist_gen import build_test_lists

COUNTRIES = ("CN", "IR", "IN", "RU")


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 6000
    print(f"Passive side: simulating a two-week study ({n} sampled connections)...")
    study = two_week_study(n_connections=n, seed=7)
    dataset = study.analyze()

    lists = build_test_lists(study.world.universe, seed=7)
    test_list = sorted(
        lists["Citizenlab"].entries
        | lists["Greatfire_all"].entries
        | lists["Tranco_10K"].entries
    )
    test_list = [d for d in test_list if d in study.world.universe]
    print(f"Active side: probing {len(test_list)} test-list domains from "
          f"{len(COUNTRIES)} countries x 2 vantages...")
    prober = ActiveProber(study.world, seed=7)
    scan = prober.scan(test_list, countries=COUNTRIES, vantages_per_country=2)

    report = compare_coverage(study.world, scan, dataset, countries=COUNTRIES)
    rows = []
    for cmp in report:
        rows.append([
            cmp.country, len(cmp.truth_blocked), len(cmp.both),
            len(cmp.active_only), len(cmp.passive_only), len(cmp.invisible),
            f"{100 * cmp.active_recall:.0f}%",
            f"{100 * cmp.passive_recall:.0f}%",
            f"{100 * cmp.union_recall:.0f}%",
        ])
    print()
    print(render_table(
        ["country", "blocked (truth)", "both", "active only", "passive only",
         "invisible", "active recall", "passive recall", "union recall"],
        rows,
        title="Who sees what, per country",
    ))

    print("""
Reading the table:
  * "active only": listed domains nobody happened to request -- passive
    measurement is structurally blind to them (paper §3.4).
  * "passive only": domains real users were blocked from that the test
    list misses -- the paper's §5.5 finding; these are free candidates
    for the next version of the list.
  * Iran's tiny passive recall is the paper's own caveat: censors that
    drop the offending packet hide the trigger domain from the server.
  * The union column is the paper's closing argument: only together do
    the two modalities approach the truth.""")

    ir = report["IR"]
    cn = report["CN"]
    assert cn.passive_recall > ir.passive_recall, "Iran's drops hide domains"
    return 0


if __name__ == "__main__":
    sys.exit(main())
