#!/usr/bin/env python
"""Quickstart: simulate a small global study and classify it.

Runs a scaled-down version of the paper's two-week measurement: a
synthetic world of ~45 countries with their middlebox deployments, a few
thousand sampled connections, the 19-signature classifier, and the
headline aggregates (possibly-tampered share, per-country rates, top
signatures).

Run:
    python examples/quickstart.py [n_connections]
"""

import sys
from collections import Counter

from repro import TamperingClassifier, two_week_study
from repro.core.report import render_table


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    print(f"Simulating a two-week study with {n} sampled connections...")
    study = two_week_study(n_connections=n, seed=7)
    print(f"  world: {len(study.world.profiles)} countries, "
          f"{len(study.world.universe)} domains, "
          f"{len(study.world.geo.asns)} ASNs")
    print(f"  captured: {len(study.samples)} connection samples\n")

    data = study.analyze()
    stats = data.stage_statistics()
    print(f"possibly tampered:  {stats['possibly_tampered_pct']:.1f}% of connections "
          f"(paper: 25.7%)")
    print(f"signature coverage: {stats['signature_coverage_pct']:.1f}% of possibly "
          f"tampered (paper: 86.9%)\n")

    counts = Counter(c.signature for c in data if c.tampered)
    rows = [[sig.display, n_match] for sig, n_match in counts.most_common(10)]
    print(render_table(["signature", "matches"], rows, title="Top signatures"))
    print()

    rates = data.country_tampering_rate()
    top = sorted(rates.items(), key=lambda kv: -kv[1])[:12]
    rows = [[country, f"{rate:.1f}%"] for country, rate in top]
    print(render_table(["country", "tampered"], rows,
                       title="Most-tampered countries (by share of their connections)"))

    # Individual connections are easy to inspect too:
    classifier = TamperingClassifier()
    tampered_sample = next(s for s in study.samples if s.truth_tampered)
    result = classifier.classify(tampered_sample)
    print(f"\nExample tampered connection (conn_id={result.conn_id}):")
    print(f"  signature: {result.signature.display}  stage: {result.stage.value}")
    print(f"  trigger domain (if visible): {result.domain}")
    from repro.core.sequence import reconstruct_order

    for pkt in reconstruct_order(result.sample.packets):
        print(f"    {pkt.describe()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
