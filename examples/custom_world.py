#!/usr/bin/env python
"""Define your own world in JSON and measure it.

Builds a two-country world from a config dictionary (the same format
``repro-tamper profiles -o profiles.json`` exports), runs a study over
it, and shows the classifier attributing each deployment's signature --
the workflow for calibrating a world against new ground truth, or for
modelling a hypothetical censorship rollout before it happens.

Run:
    python examples/custom_world.py
"""

import json
import sys
import tempfile
from collections import Counter

from repro import two_week_study
from repro.core.report import render_table
from repro.workloads.config import dump_profiles, load_profiles
from repro.workloads.profiles import CountryProfile, DeploymentSpec

WORLD = [
    CountryProfile(
        code="NC", name="Newcensoria", weight=2.0, tz_offset=6, n_asns=4,
        p_blocked=0.35,
        blocked_categories=(("News", 0.6), ("Social Networks", 0.5)),
        deployments=(
            # A hypothetical rollout: the incumbent ISP gets a GFW-style
            # injector, smaller networks get cheap in-path droppers.
            DeploymentSpec(vendor="gfw", blocked_share=0.6, asn_share=0.5),
            DeploymentSpec(vendor="iran_drop", blocked_share=0.4, asn_share=0.75),
        ),
    ),
    CountryProfile(code="FL", name="Freelandia", weight=3.0, tz_offset=-2, n_asns=3),
]


def main() -> int:
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as fh:
        path = fh.name
    dump_profiles(path, WORLD)
    print(f"world definition written to {path}:")
    with open(path) as fh:
        preview = json.load(fh)
    print(f"  {len(preview)} countries; NC deploys "
          f"{[d['vendor'] for d in preview[0]['deployments']]}\n")

    profiles = load_profiles(path)  # the CLI does exactly this
    study = two_week_study(n_connections=2500, seed=19, profiles=profiles,
                           n_domains=800)
    data = study.analyze()

    rates = data.country_tampering_rate()
    print(render_table(["country", "tampered %"],
                       [[c, rates[c]] for c in sorted(rates)],
                       title="Measured tampering per country"))

    signatures = Counter(
        c.signature.display for c in data if c.country == "NC" and c.tampered
    )
    print()
    print(render_table(["signature", "matches"], list(signatures.most_common()),
                       title="Newcensoria's signature mix (one per deployment family)"))

    assert rates["NC"] > 10 > rates.get("FL", 0)
    return 0


if __name__ == "__main__":
    sys.exit(main())
